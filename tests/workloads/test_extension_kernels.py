"""Functional tests for the extension kernels (Histogram, CSRBuild).

Both extend the paper's nine-kernel suite through the registry: Histogram
is the canonical commutative bucket-count, CSRBuild fuses the
Degree-Count + Neighbor-Populate conversion passes into one three-access
irregular update. Each must satisfy the Section III-B criterion — PB's
reordering preserves the result — which is what the registry oracle
checks for every resolved point.
"""

import numpy as np
import pytest

from repro.graphs import build_csr, rmat
from repro.workloads import CSRBuild, Histogram
from repro.workloads.validate import results_equal, verify_workload


@pytest.fixture(scope="module")
def edges():
    return rmat(1 << 10, 1 << 13, seed=31)


@pytest.fixture(scope="module")
def keys(rng):
    return rng.integers(0, 4096, size=20_000, dtype=np.int64)


class TestHistogram:
    def test_pb_matches_reference(self, keys):
        workload = Histogram(keys, 4096)
        assert np.array_equal(
            workload.run_reference(), workload.run_pb_functional(num_bins=32)
        )

    def test_counts_sum_to_keys(self, keys):
        workload = Histogram(keys, 4096)
        assert workload.run_reference().sum() == len(keys)

    def test_shift_sets_bucket_namespace(self, keys):
        assert Histogram(keys, 4096, shift=6).num_indices == 4096 >> 6
        assert Histogram(keys, 4096, shift=0).num_indices == 4096
        # A shift wider than the key range still leaves one bucket.
        assert Histogram(keys, 4096, shift=20).num_indices == 1

    def test_metadata(self, keys):
        workload = Histogram(keys, 4096)
        assert workload.commutative
        assert workload.num_updates == len(keys)
        assert workload.update_indices.max() < workload.num_indices

    def test_out_of_range_keys_rejected(self):
        with pytest.raises(ValueError, match="max_key"):
            Histogram(np.array([0, 9]), 8)

    def test_negative_shift_rejected(self, keys):
        with pytest.raises(ValueError, match="shift"):
            Histogram(keys, 4096, shift=-1)

    def test_oracle_verifies(self, keys):
        assert verify_workload(Histogram(keys, 4096), num_bins=16)


class TestCSRBuild:
    def test_pb_produces_identical_csr(self, edges):
        # Stable FIFO bins preserve per-source edge order, so the fused
        # build lands every destination at the same slot bit-for-bit.
        workload = CSRBuild(edges)
        reference = workload.run_reference()
        pb = workload.run_pb_functional(num_bins=64)
        assert np.array_equal(reference.offsets, pb.offsets)
        assert np.array_equal(reference.neighbors, pb.neighbors)

    def test_reference_matches_substrate(self, edges):
        assert results_equal(CSRBuild(edges).run_reference(), build_csr(edges))

    def test_non_commutative_flag(self, edges):
        assert not CSRBuild(edges).commutative

    def test_slots_are_a_permutation(self, edges):
        workload = CSRBuild(edges)
        assert np.array_equal(
            np.sort(workload._slots), np.arange(edges.num_edges)
        )

    def test_fused_loop_touches_three_regions(self, edges):
        workload = CSRBuild(edges)
        extra = workload.extra_baseline_segments()
        regions = {segment.region.name for segment in extra}
        assert regions == {"csr-build.degrees", "csr-build.neighbors"}
        # Plus the primary cursor region: three irregular streams total.
        assert workload.data_region.name == "csr-build.cursors"

    def test_accumulate_segments_follow_order(self, edges):
        workload = CSRBuild(edges)
        order = np.arange(edges.num_edges)[::-1].copy()
        degrees, neighbors = workload.extra_accumulate_segments(order)
        assert np.array_equal(degrees.indices, edges.src[order])
        assert np.array_equal(neighbors.indices, workload._slots[order])

    def test_oracle_verifies(self, edges):
        assert verify_workload(CSRBuild(edges), num_bins=16)

    def test_ingested_graph_builds(self):
        from repro.workloads.registry import resolve

        workload = resolve("csr-build", "KARATE")
        assert verify_workload(workload, num_bins=8)
