"""Tests for the declarative workload registry.

Round-trips every registered spec through resolution and the functional
oracle at a small scale, and pins the identity contract: spec strings,
cache keys, kind checking, fixed-scale datasets, and the static
``REGISTERED_CLASSES`` literal the lint rule parses.
"""

import warnings

import pytest

from repro.workloads import registry
from repro.workloads.registry import (
    DATASET_NAMES,
    GRAPH_NAMES,
    INPUTS,
    REGISTERED_CLASSES,
    WORKLOAD_INPUTS,
    WORKLOADS,
    cache_key_for,
    default_bin_counts,
    describe_workloads,
    effective_scale,
    format_spec,
    input_fixed_scale,
    parse_spec,
    resolve,
    resolve_point,
    resolve_spec,
    workload_instances,
)

SCALE = 10  # small enough that every kernel oracle-verifies quickly


def suite_triples():
    """Every (workload, input) pair of the full registry, suite scale."""
    triples = []
    for name, spec in WORKLOADS.items():
        for input_name in spec.inputs:
            triples.append((name, input_name))
    return triples


class TestRoundTrip:
    @pytest.mark.parametrize("workload_name,input_name", suite_triples())
    def test_every_spec_resolves_and_verifies(self, workload_name, input_name):
        scale = None if input_fixed_scale(input_name) is not None else SCALE
        workload = resolve(workload_name, input_name, scale)
        assert workload.num_updates > 0
        spec = WORKLOADS[workload_name]
        assert spec.oracle(workload, num_bins=16)

    @pytest.mark.parametrize("workload_name,input_name", suite_triples())
    def test_cache_key_round_trips(self, workload_name, input_name):
        scale = None if input_fixed_scale(input_name) is not None else SCALE
        workload = resolve(workload_name, input_name, scale)
        assert resolve_point(workload.cache_key) is workload

    def test_spec_string_round_trips(self):
        workload = resolve_spec(f"degree-count/KRON@{SCALE}")
        assert workload is resolve("degree-count", "KRON", SCALE)
        assert workload.cache_key == f"degree-count:KRON:{SCALE}"


class TestIdentity:
    def test_format_and_parse_are_inverse(self):
        spec = format_spec("pagerank", "WEB", 14)
        assert spec == "pagerank/WEB@14"
        assert parse_spec(spec) == ("pagerank", "WEB", 14)

    def test_parse_without_scale(self):
        assert parse_spec("spmv/POIS") == ("spmv", "POIS", None)

    @pytest.mark.parametrize(
        "bad", ["pagerank", "pagerank@14", "a/b/c@14", "/KRON@14", "pr/@14"]
    )
    def test_malformed_spec_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_spec(bad)

    @pytest.mark.parametrize("bad", ["spmv/POIS@x", "spmv/POIS@0", "spmv/POIS@-3"])
    def test_bad_scale_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_spec(bad)

    def test_cache_key_bytes_are_the_wire_format(self):
        # Frozen contract: colon-separated, integer scale — these bytes
        # feed run_digest and must never drift (see test_digest_pins).
        assert cache_key_for("integer-sort", "U16", 13) == "integer-sort:U16:13"

    def test_bad_cache_key_rejected(self):
        with pytest.raises(ValueError):
            resolve_point("degree-count:KRON")
        with pytest.raises(ValueError):
            resolve_point("degree-count:KRON:big")


class TestResolutionErrors:
    def test_unknown_workload(self):
        with pytest.raises(KeyError, match="unknown workload"):
            resolve("nope", "KRON", SCALE)

    def test_unknown_input(self):
        with pytest.raises(KeyError, match="unknown input"):
            resolve("degree-count", "NOPE", SCALE)

    def test_kind_mismatch(self):
        # spmv consumes matrices; KRON is a graph input.
        with pytest.raises(KeyError, match="matrix"):
            resolve("spmv", "KRON", SCALE)


class TestDatasets:
    def test_ingested_inputs_registered_as_graphs(self):
        for name in DATASET_NAMES:
            assert INPUTS[name].kind == registry.KIND_GRAPH
            assert input_fixed_scale(name) is not None

    def test_fixed_scale_conflict_rejected(self):
        name = DATASET_NAMES[0]
        fixed = input_fixed_scale(name)
        with pytest.raises(ValueError, match="fixed at"):
            effective_scale(name, fixed + 1)

    def test_fixed_scale_accepts_none_and_exact(self):
        name = DATASET_NAMES[0]
        fixed = input_fixed_scale(name)
        assert effective_scale(name) == fixed
        assert effective_scale(name, fixed) == fixed

    def test_dataset_resolves_under_graph_kernels_ad_hoc(self):
        # KARATE is not in degree-count's canonical suite tuple, but it
        # is a graph input, so kind-based resolution accepts it.
        workload = resolve("degree-count", "KARATE")
        assert workload.cache_key == (
            f"degree-count:KARATE:{input_fixed_scale('KARATE')}"
        )


class TestSuiteStability:
    def test_paper_suite_excludes_extensions(self):
        assert set(WORKLOAD_INPUTS) == {
            name for name, spec in WORKLOADS.items() if not spec.extension
        }
        assert len(WORKLOAD_INPUTS) == 9
        # 23 canonical points: the digest-pin fixture's exact size.
        assert sum(len(v) for v in WORKLOAD_INPUTS.values()) == 23

    def test_workload_instances_default_matches_paper_suite(self):
        triples = list(workload_instances(scale=SCALE))
        assert len(triples) == 23
        assert {name for name, _i, _w in triples} == set(WORKLOAD_INPUTS)

    def test_include_extensions_adds_new_kernels(self):
        triples = list(
            workload_instances(scale=SCALE, include_extensions=True)
        )
        names = {name for name, _i, _w in triples}
        assert "histogram" in names and "csr-build" in names
        extra = len(WORKLOADS["histogram"].inputs) + len(
            WORKLOADS["csr-build"].inputs
        )
        assert len(triples) == 23 + extra

    def test_registered_classes_literal_matches_live_registry(self):
        # The lint rule parses REGISTERED_CLASSES statically; this keeps
        # the literal honest against what the builders construct.
        scale = SCALE
        live = set()
        for name, spec in WORKLOADS.items():
            input_name = spec.inputs[0]
            point_scale = (
                None if input_fixed_scale(input_name) is not None else scale
            )
            live.add(type(resolve(name, input_name, point_scale)).__name__)
        assert live == set(REGISTERED_CLASSES)
        assert REGISTERED_CLASSES == tuple(
            sorted(REGISTERED_CLASSES, key=str.lower)
        )


class TestBinCounts:
    def test_paper_sweep_at_suite_scale(self):
        assert default_bin_counts(18) == (16, 32, 64, 128, 256, 512, 1024, 2048, 4096)

    def test_small_scales_clip(self):
        assert default_bin_counts(6) == (16,)
        assert max(default_bin_counts(10)) <= 1 << 10


class TestListings:
    def test_describe_workloads_covers_registry(self):
        rows = describe_workloads()
        assert [row["workload"] for row in rows] == list(WORKLOADS)
        for row in rows:
            assert row["specs"]  # every workload lists runnable specs
            for spec_text in row["specs"]:
                name, input_name, scale = parse_spec(spec_text)
                assert name == row["workload"]
                assert input_name in row["inputs"]
                assert scale is not None


class TestCompatibilityShim:
    def test_inputs_module_make_workload_warns_and_delegates(self):
        from repro.harness import inputs

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            workload = inputs.make_workload("degree-count", "KRON", SCALE)
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )
        assert workload is resolve("degree-count", "KRON", SCALE)

    def test_api_resolve_workload(self):
        from repro import api

        workload = api.resolve_workload(f"degree-count/KRON@{SCALE}")
        assert workload is resolve("degree-count", "KRON", SCALE)
