"""Tests for the group-rank helpers."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads._ranks import group_ranks, placement_slots


class TestGroupRanks:
    def test_appearance_order(self):
        keys = np.array([2, 0, 2, 2, 0])
        assert np.array_equal(group_ranks(keys, 3), [0, 0, 1, 2, 1])

    def test_single_group(self):
        keys = np.zeros(5, dtype=np.int64)
        assert np.array_equal(group_ranks(keys, 1), np.arange(5))

    def test_empty(self):
        assert len(group_ranks(np.array([], dtype=np.int64), 4)) == 0


class TestPlacementSlots:
    def test_contiguous_packing(self):
        keys = np.array([1, 0, 1, 2])
        # Group starts: 0 -> 0, 1 -> 1, 2 -> 3.
        assert np.array_equal(placement_slots(keys, 3), [1, 0, 2, 3])

    def test_explicit_group_starts(self):
        keys = np.array([0, 0, 1])
        starts = np.array([10, 20])
        assert np.array_equal(
            placement_slots(keys, 2, starts), [10, 11, 20]
        )

    def test_slots_are_a_permutation(self, rng):
        keys = rng.integers(0, 50, size=500)
        slots = placement_slots(keys, 50)
        assert np.array_equal(np.sort(slots), np.arange(500))

    def test_slots_sort_keys(self, rng):
        keys = rng.integers(0, 50, size=500)
        slots = placement_slots(keys, 50)
        out = np.empty(500, dtype=np.int64)
        out[slots] = keys
        assert np.array_equal(out, np.sort(keys, kind="stable"))

    @given(st.lists(st.integers(0, 9), min_size=0, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_stability_property(self, raw):
        keys = np.array(raw, dtype=np.int64)
        slots = placement_slots(keys, 10)
        # Equal keys keep their relative order (stability).
        for key in set(raw):
            positions = slots[keys == key]
            assert np.all(np.diff(positions) > 0)
