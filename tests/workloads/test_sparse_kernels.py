"""Functional tests for the sparse linear algebra workloads."""

import numpy as np
import pytest

from repro.sparse import (
    poisson2d,
    random_permutation,
    random_sparse,
    random_symmetric,
)
from repro.workloads import PInv, SpMV, SymPerm, Transpose


@pytest.fixture(scope="module")
def matrix():
    return random_sparse(300, 300, 3000, seed=31).to_csr()


class TestSpMV:
    def test_pb_matches_reference(self, matrix):
        workload = SpMV(matrix, seed=1)
        assert np.allclose(
            workload.run_reference(), workload.run_pb_functional(num_bins=16)
        )

    def test_reference_is_transpose_product(self, matrix):
        workload = SpMV(matrix, seed=1)
        assert np.allclose(
            workload.run_reference(), matrix.to_dense().T @ workload.x
        )

    def test_poisson_input(self):
        matrix = poisson2d(20, seed=2).to_csr()
        workload = SpMV(matrix, seed=3)
        assert np.allclose(
            workload.run_reference(), workload.run_pb_functional(num_bins=8)
        )

    def test_x_shape_validated(self, matrix):
        with pytest.raises(ValueError):
            SpMV(matrix, x=np.ones(5))

    def test_commutative(self, matrix):
        assert SpMV(matrix, seed=1).commutative


class TestPInv:
    def test_pb_matches_reference(self):
        perm = random_permutation(4096, seed=4)
        workload = PInv(perm)
        assert np.array_equal(
            workload.run_reference(), workload.run_pb_functional(num_bins=16)
        )

    def test_inverse_property(self):
        perm = random_permutation(1000, seed=5)
        inverse = PInv(perm).run_reference()
        assert np.array_equal(perm[inverse], np.arange(1000))
        assert np.array_equal(inverse[perm], np.arange(1000))

    def test_one_update_per_index(self):
        perm = random_permutation(256, seed=6)
        workload = PInv(perm)
        assert workload.num_updates == workload.num_indices

    def test_non_permutation_rejected(self):
        with pytest.raises(ValueError, match="permutation"):
            PInv(np.array([0, 0, 2]))


class TestTranspose:
    def test_pb_matches_reference(self, matrix):
        workload = Transpose(matrix)
        reference = workload.run_reference().canonical()
        pb = workload.run_pb_functional(num_bins=16).canonical()
        assert np.array_equal(reference.indptr, pb.indptr)
        assert np.array_equal(reference.indices, pb.indices)
        assert np.allclose(reference.data, pb.data)

    def test_reference_is_the_transpose(self, matrix):
        workload = Transpose(matrix)
        assert np.allclose(
            workload.run_reference().to_dense(), matrix.to_dense().T
        )

    def test_non_commutative(self, matrix):
        assert not Transpose(matrix).commutative

    def test_updates_are_nnz(self, matrix):
        assert Transpose(matrix).num_updates == matrix.nnz


class TestSymPerm:
    @pytest.fixture(scope="class")
    def inputs(self):
        sym = random_symmetric(200, 800, seed=7)
        perm = random_permutation(200, seed=8)
        return sym, perm

    def test_pb_matches_reference(self, inputs):
        sym, perm = inputs
        workload = SymPerm(sym, perm)
        for ref, pb in zip(
            workload.run_reference(), workload.run_pb_functional(num_bins=8)
        ):
            assert np.allclose(ref, pb)

    def test_result_is_upper_triangular(self, inputs):
        sym, perm = inputs
        lo, hi, _vals = SymPerm(sym, perm).run_reference()
        assert np.all(hi >= lo)

    def test_permutation_preserves_values(self, inputs):
        sym, perm = inputs
        _lo, _hi, vals = SymPerm(sym, perm).run_reference()
        expected = sym.upper_triangular().vals
        assert np.allclose(np.sort(vals), np.sort(expected))

    def test_streams_more_than_it_updates(self, inputs):
        # SymPerm reads the whole symmetric matrix but updates only the
        # upper triangle — the limited-headroom effect of Section VII-A.
        sym, perm = inputs
        workload = SymPerm(sym, perm)
        assert workload.stream_bytes_per_update > 16

    def test_upper_check_branch_site(self, inputs):
        sym, perm = inputs
        sites = SymPerm(sym, perm).extra_branch_sites("main")
        assert sites[0].name == "upper_check"

    def test_shape_validation(self, inputs):
        sym, _ = inputs
        with pytest.raises(ValueError, match="perm length"):
            SymPerm(sym, np.arange(5))
