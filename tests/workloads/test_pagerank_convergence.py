"""Multi-iteration Pagerank under PB (the Figure 15 execution mode)."""

import numpy as np
import pytest

from repro.graphs import build_csr, rmat
from repro.workloads import Pagerank


@pytest.fixture(scope="module")
def workload():
    return Pagerank(build_csr(rmat(1 << 11, 1 << 14, seed=88)))


class TestConvergence:
    def test_pb_converges_to_same_fixed_point(self, workload):
        direct, direct_iters = workload.run_to_convergence(tol=1e-8)
        blocked, pb_iters = workload.run_to_convergence(
            tol=1e-8, use_pb=True, num_bins=64
        )
        assert np.allclose(direct, blocked)
        assert direct_iters == pb_iters  # identical trajectory

    def test_bin_count_does_not_change_result(self, workload):
        few, _ = workload.run_to_convergence(tol=1e-8, use_pb=True, num_bins=4)
        many, _ = workload.run_to_convergence(
            tol=1e-8, use_pb=True, num_bins=1024
        )
        assert np.allclose(few, many)

    def test_scores_form_a_distribution_up_to_dangling_mass(self, workload):
        scores, _ = workload.run_to_convergence(tol=1e-8)
        assert scores.min() > 0
        assert 0.3 < scores.sum() <= 1.0 + 1e-9

    def test_max_iters_respected(self, workload):
        _, iterations = workload.run_to_convergence(tol=0.0, max_iters=3)
        assert iterations == 3

    def test_tighter_tolerance_needs_more_iterations(self, workload):
        _, loose = workload.run_to_convergence(tol=1e-3)
        _, tight = workload.run_to_convergence(tol=1e-9)
        assert tight > loose
