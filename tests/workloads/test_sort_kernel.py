"""Functional tests for Integer Sort."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import IntegerSort


@pytest.fixture(scope="module")
def keys(rng):
    return rng.integers(0, 1 << 10, size=20_000, dtype=np.int64)


class TestCorrectness:
    def test_counting_sort_sorts(self, keys):
        workload = IntegerSort(keys, 1 << 10)
        assert np.array_equal(workload.run_counting_sort(), np.sort(keys))

    def test_pb_sort_sorts(self, keys):
        workload = IntegerSort(keys, 1 << 10)
        assert np.array_equal(
            workload.run_pb_functional(num_bins=16), np.sort(keys)
        )

    def test_reference_is_sorted(self, keys):
        workload = IntegerSort(keys, 1 << 10)
        reference = workload.run_reference()
        assert np.all(np.diff(reference) >= 0)

    @given(st.lists(st.integers(0, 63), min_size=0, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_pb_sort_property(self, raw):
        if not raw:
            return
        keys = np.array(raw, dtype=np.int64)
        workload = IntegerSort(keys, 64)
        assert np.array_equal(
            workload.run_pb_functional(num_bins=8), np.sort(keys)
        )

    def test_key_range_validated(self):
        with pytest.raises(ValueError, match="max_key"):
            IntegerSort(np.array([5]), 5)


class TestPhases:
    def test_baseline_is_comparison_sort(self, keys):
        workload = IntegerSort(keys, 1 << 10)
        (phase,) = workload.baseline_phases()
        assert phase.segments == []  # mergesort streams, no scatters
        assert phase.branch_sites[0].name == "merge_compare"
        # n log n instruction scaling.
        assert phase.instructions > workload.num_updates * 10

    def test_characterization_uses_irregular_formulation(self, keys):
        workload = IntegerSort(keys, 1 << 10)
        (phase,) = workload.characterization_phases()
        assert phase.irregular_accesses == 2 * workload.num_updates

    def test_non_commutative(self, keys):
        assert not IntegerSort(keys, 1 << 10).commutative
