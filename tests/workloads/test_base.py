"""Tests for the workload phase builders."""

import numpy as np
import pytest

from repro.core.config import CobraConfig
from repro.graphs import rmat
from repro.pb import BinSpec
from repro.workloads import DegreeCount, NeighborPopulate


@pytest.fixture(scope="module")
def workload():
    return DegreeCount(rmat(1 << 12, 1 << 15, seed=9))


@pytest.fixture(scope="module")
def spec(workload):
    return BinSpec.from_num_bins(workload.num_indices, 64)


class TestBaselinePhases:
    def test_single_main_phase(self, workload):
        (phase,) = workload.baseline_phases()
        assert phase.name == "main"
        assert phase.instructions == workload.num_updates * 8

    def test_segments_cover_updates(self, workload):
        (phase,) = workload.baseline_phases()
        assert phase.irregular_accesses == workload.num_updates

    def test_streaming_volume(self, workload):
        (phase,) = workload.baseline_phases()
        assert phase.streaming_bytes == workload.num_updates * 8


class TestPBPhases:
    def test_three_phases_in_order(self, workload, spec):
        names = [p.name for p in workload.pb_phases(spec)]
        assert names == ["init", "binning", "accumulate"]

    def test_init_optional(self, workload, spec):
        names = [p.name for p in workload.pb_phases(spec, include_init=False)]
        assert names == ["binning", "accumulate"]

    def test_binning_has_cbuffer_full_site(self, workload, spec):
        binning = workload.pb_phases(spec)[1]
        sites = {site.name for site in binning.branch_sites}
        assert "cbuffer_full" in sites

    def test_binning_nt_writes_cover_stream(self, workload, spec):
        binning = workload.pb_phases(spec)[1]
        tuples_per_line = 64 // workload.tuple_bytes
        min_lines = workload.num_updates // tuples_per_line
        assert binning.nt_write_lines >= min_lines

    def test_accumulate_replays_bin_major(self, workload, spec):
        accumulate = workload.pb_phases(spec)[2]
        indices = accumulate.segments[0].indices
        bins = spec.bins_of(indices)
        assert np.all(np.diff(bins) >= 0)

    def test_accumulate_records_bin_count(self, workload, spec):
        accumulate = workload.pb_phases(spec)[2]
        assert accumulate.num_bins == spec.num_bins

    def test_pb_instruction_overhead_in_paper_band(self, workload, spec):
        """Section III-C: PB executes up to ~4x the baseline instructions."""
        base = sum(p.instructions for p in workload.baseline_phases())
        pb = sum(p.instructions for p in workload.pb_phases(spec))
        assert 2.0 < pb / base < 4.5


class TestCobraPhases:
    def test_cobra_binning_has_no_cache_segments(self, workload):
        cobra = CobraConfig(
            num_indices=workload.num_indices, tuple_bytes=workload.tuple_bytes
        )
        binning = workload.cobra_phases(cobra)[1]
        assert binning.segments == []
        assert binning.des_trace is not None
        assert binning.reserved_ways is not None

    def test_cobra_hw_lines_cover_all_tuples(self, workload):
        cobra = CobraConfig(
            num_indices=workload.num_indices, tuple_bytes=workload.tuple_bytes
        )
        binning = workload.cobra_phases(cobra)[1]
        per_line = cobra.tuples_per_line
        assert binning.hw_write_lines >= workload.num_updates // per_line

    def test_cobra_instruction_reduction_in_paper_band(self, workload, spec):
        """Figure 12 top: COBRA executes 2-5.5x fewer instructions."""
        cobra = CobraConfig(
            num_indices=workload.num_indices, tuple_bytes=workload.tuple_bytes
        )
        pb = sum(p.instructions for p in workload.pb_phases(spec))
        hw = sum(p.instructions for p in workload.cobra_phases(cobra))
        assert 1.8 < pb / hw < 5.5

    def test_mismatched_config_rejected(self, workload):
        cobra = CobraConfig(num_indices=64, tuple_bytes=workload.tuple_bytes)
        with pytest.raises(ValueError, match="namespace"):
            workload.cobra_phases(cobra)

    def test_mismatched_tuple_size_rejected(self, workload):
        cobra = CobraConfig(
            num_indices=workload.num_indices, tuple_bytes=16
        )
        with pytest.raises(ValueError, match="tuple"):
            workload.cobra_phases(cobra)


class TestMultiSegmentPhases:
    def test_neighbor_populate_has_two_streams(self):
        workload = NeighborPopulate(rmat(1 << 10, 1 << 13, seed=3))
        (phase,) = workload.baseline_phases()
        assert len(phase.segments) == 2
        assert phase.irregular_accesses == 2 * workload.num_updates
