"""Degenerate and boundary inputs across the stack.

Tiny namespaces, empty streams, single bins: anywhere a division, shift,
or prefix sum could go wrong.
"""

import numpy as np
import pytest

from repro.core import CobraConfig, CobraMachine
from repro.graphs import EdgeList, build_csr
from repro.pb import BinSpec, CBufferModel, PropagationBlocker, bin_updates, plan_bins
from repro.workloads import DegreeCount, NeighborPopulate, Pagerank


class TestEmptyStreams:
    def test_bin_updates_empty(self):
        spec = BinSpec(16, 4)
        binned, vals, offsets = bin_updates(
            np.array([], dtype=np.int64), np.array([]), spec
        )
        assert len(binned) == 0
        assert offsets[-1] == 0

    def test_cbuffer_model_empty(self):
        model = CBufferModel(BinSpec(16, 4), tuple_bytes=8)
        empty = np.array([], dtype=np.int64)
        assert model.full_events(empty).sum() == 0
        assert model.transfer_counts(empty) == (0, 0)

    def test_cobra_machine_flush_without_updates(self):
        machine = CobraMachine(CobraConfig(num_indices=64, tuple_bytes=8))
        machine.bininit()
        machine.binflush()
        assert machine.memory_bins.total_tuples == 0

    def test_empty_edge_list_workload(self):
        edges = EdgeList([], [], 8)
        workload = DegreeCount(edges)
        assert workload.num_updates == 0
        assert np.array_equal(workload.run_reference(), np.zeros(8, dtype=np.int64))
        (phase,) = workload.baseline_phases()
        assert phase.instructions == 0


class TestSingleBin:
    def test_one_bin_covers_everything(self):
        spec = BinSpec(100, 128)
        assert spec.num_bins == 1
        indices = np.array([5, 99, 0])
        binned, _v, offsets = bin_updates(indices, None, spec)
        assert np.array_equal(binned, indices)  # order untouched
        assert offsets.tolist() == [0, 3]

    def test_blocker_with_one_bin_is_identity_order(self):
        blocker = PropagationBlocker(100, num_bins=1)
        visited = []
        blocker.execute(
            np.array([9, 2, 7]),
            np.zeros(3),
            None,
            lambda out, i, v: visited.append(i),
        )
        assert visited == [9, 2, 7]


class TestTinyNamespaces:
    def test_plan_bins_single_index(self):
        plan = plan_bins(1, 4)
        assert plan.binning_best.num_bins == 1
        assert plan.accumulate_best.num_bins == 1

    def test_cobra_config_tiny_namespace(self):
        config = CobraConfig(num_indices=4, tuple_bytes=8)
        # Everything collapses to one buffer per level.
        assert config.l1.num_buffers >= 1
        assert config.llc.num_buffers >= config.l1.num_buffers
        machine = CobraMachine(config).bininit()
        machine.binupdate_many([0, 1, 2, 3] * 5)
        machine.binflush()
        assert machine.memory_bins.total_tuples == 20

    def test_single_vertex_graph(self):
        edges = EdgeList([0, 0], [0, 0], 1)
        csr = build_csr(edges)
        assert csr.degree(0) == 2
        workload = NeighborPopulate(edges)
        built = workload.run_pb_functional(num_bins=1)
        assert np.array_equal(built.neighbors, [0, 0])

    def test_pagerank_on_self_loop(self):
        edges = EdgeList([0, 1], [0, 1], 2)
        workload = Pagerank(build_csr(edges))
        scores = workload.run_reference()
        assert scores.shape == (2,)
        assert np.isfinite(scores).all()


class TestLargeTuples:
    def test_16_byte_tuples_pack_four_per_line(self):
        config = CobraConfig(num_indices=1 << 10, tuple_bytes=16)
        assert config.tuples_per_line == 4
        machine = CobraMachine(config).bininit()
        machine.binupdate_many(list(range(8)))
        # Two L1 lines' worth inserted into the same buffer: one eviction.
        assert machine.stats.l1_evictions >= 1

    def test_one_byte_granularity_rejected(self):
        with pytest.raises(ValueError):
            CobraConfig(num_indices=16, tuple_bytes=3)
