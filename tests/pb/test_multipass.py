"""Tests for multi-pass radix partitioning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pb import bin_updates
from repro.pb.multipass import MultiPassPartitioner


class TestConfiguration:
    def test_bits_split_evenly(self):
        partitioner = MultiPassPartitioner(1 << 16, num_bins=256, passes=2)
        assert partitioner.bits_per_pass == [4, 4]
        assert partitioner.pass_bin_counts() == [16, 16]

    def test_odd_bits_front_loaded(self):
        partitioner = MultiPassPartitioner(1 << 16, num_bins=512, passes=2)
        assert partitioner.bits_per_pass == [5, 4]

    def test_single_pass_degenerates(self):
        partitioner = MultiPassPartitioner(1 << 16, num_bins=64, passes=1)
        assert partitioner.bits_per_pass == [6]

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            MultiPassPartitioner(1 << 16, num_bins=100)  # not a power of 2
        with pytest.raises(ValueError):
            MultiPassPartitioner(1 << 16, num_bins=64, passes=0)

    def test_max_live_buffers_far_below_total(self):
        partitioner = MultiPassPartitioner(1 << 20, num_bins=4096, passes=2)
        assert partitioner.max_live_buffers() == 64
        assert partitioner.max_live_buffers() ** 2 == 4096


class TestEquivalence:
    def test_matches_single_pass_binning(self, rng):
        n = 1 << 14
        indices = rng.integers(0, n, size=20_000)
        values = np.arange(20_000)
        partitioner = MultiPassPartitioner(n, num_bins=256, passes=2)
        multi_idx, multi_val, multi_off = partitioner.partition(indices, values)
        single_idx, single_val, single_off = bin_updates(
            indices, values, partitioner.spec
        )
        assert np.array_equal(multi_idx, single_idx)
        assert np.array_equal(multi_val, single_val)
        assert np.array_equal(multi_off, single_off)

    def test_three_passes_equivalent(self, rng):
        n = 1 << 12
        indices = rng.integers(0, n, size=5_000)
        partitioner = MultiPassPartitioner(n, num_bins=512, passes=3)
        multi_idx, _vals, _off = partitioner.partition(indices)
        single_idx, _sv, _so = bin_updates(indices, None, partitioner.spec)
        assert np.array_equal(multi_idx, single_idx)

    @given(
        st.lists(st.integers(0, 1023), min_size=0, max_size=300),
        st.sampled_from([2, 3]),
    )
    @settings(max_examples=40, deadline=None)
    def test_equivalence_property(self, raw, passes):
        indices = np.array(raw, dtype=np.int64)
        partitioner = MultiPassPartitioner(1024, num_bins=64, passes=passes)
        multi_idx, _v, multi_off = partitioner.partition(indices)
        single_idx, _sv, single_off = bin_updates(
            indices, None, partitioner.spec
        )
        assert np.array_equal(multi_idx, single_idx)
        assert np.array_equal(multi_off, single_off)


class TestCostModel:
    def test_tuple_moves_scale_with_passes(self):
        two = MultiPassPartitioner(1 << 16, 256, passes=2)
        three = MultiPassPartitioner(1 << 16, 4096, passes=3)
        assert two.tuple_moves(1000) == 2000
        assert three.tuple_moves(1000) == 3000

    def test_empty_stream(self):
        partitioner = MultiPassPartitioner(1 << 10, 16, passes=2)
        idx, vals, offsets = partitioner.partition(np.array([], dtype=np.int64))
        assert len(idx) == 0
        assert offsets[-1] == 0
