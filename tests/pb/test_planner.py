"""Tests for the bin-count planner."""

import pytest

from repro.cache import HierarchyConfig
from repro.pb import plan_bins


class TestPlanBins:
    def test_ordering_invariant(self):
        plan = plan_bins(1 << 18, 4)
        assert (
            plan.binning_best.num_bins
            <= plan.compromise.num_bins
            <= plan.accumulate_best.num_bins
        )

    def test_binning_best_fits_l1(self):
        config = HierarchyConfig()
        plan = plan_bins(1 << 18, 4, config)
        assert plan.binning_best.num_bins * 64 <= config.l1_bytes

    def test_compromise_fits_l2(self):
        config = HierarchyConfig()
        plan = plan_bins(1 << 18, 4, config)
        assert plan.compromise.num_bins * 64 <= config.l2_bytes

    def test_accumulate_best_range_fits_l1(self):
        config = HierarchyConfig()
        plan = plan_bins(1 << 18, 4, config)
        assert plan.accumulate_best.bin_range * 4 <= config.l1_bytes

    def test_larger_elements_need_more_bins(self):
        four = plan_bins(1 << 18, 4).accumulate_best.num_bins
        eight = plan_bins(1 << 18, 8).accumulate_best.num_bins
        assert eight >= four * 2

    def test_small_input_degenerates_gracefully(self):
        plan = plan_bins(100, 4)
        assert plan.binning_best.num_bins >= 1
        assert (
            plan.binning_best.num_bins
            <= plan.compromise.num_bins
            <= plan.accumulate_best.num_bins
        )

    def test_headroom_shrinks_buffer_budget(self):
        full = plan_bins(1 << 18, 4, cbuffer_headroom=1.0)
        half = plan_bins(1 << 18, 4, cbuffer_headroom=0.5)
        assert half.compromise.num_bins <= full.compromise.num_bins

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            plan_bins(0, 4)
        with pytest.raises(ValueError):
            plan_bins(100, 0)

    def test_describe_mentions_counts(self):
        plan = plan_bins(1 << 18, 4)
        text = plan.describe()
        assert str(plan.compromise.num_bins) in text


class TestAutoBlocker:
    def test_uses_compromise_bins(self):
        from repro.pb import auto_blocker, plan_bins

        blocker = auto_blocker(1 << 18, 4)
        assert blocker.num_bins == plan_bins(1 << 18, 4).compromise.num_bins

    def test_executes_correctly(self, rng):
        import numpy as np

        from repro.pb import auto_blocker

        n = 1 << 12
        indices = rng.integers(0, n, size=3000)
        values = rng.standard_normal(3000)
        direct = np.zeros(n)
        np.add.at(direct, indices, values)
        blocked = auto_blocker(n, 8).execute(indices, values, np.zeros(n))
        assert np.allclose(direct, blocked)
