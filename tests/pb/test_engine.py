"""Tests for the PB executor: reordering must preserve semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pb import PropagationBlocker, apply_updates_direct


class TestDirectApply:
    def test_add(self):
        out = np.zeros(4)
        apply_updates_direct([1, 1, 3], [1.0, 2.0, 5.0], out, "add")
        assert np.array_equal(out, [0, 3, 0, 5])

    def test_add_accumulates_duplicates(self):
        out = np.zeros(2)
        apply_updates_direct([0] * 5, np.ones(5), out, "add")
        assert out[0] == 5

    def test_or(self):
        out = np.zeros(2, dtype=np.int64)
        apply_updates_direct([0, 0, 1], np.array([1, 4, 2]), out, "or")
        assert out.tolist() == [5, 2]

    def test_min(self):
        out = np.full(2, 100)
        apply_updates_direct([0, 0], np.array([7, 3]), out, "min")
        assert out[0] == 3

    def test_store_last_writer_wins(self):
        out = np.zeros(2, dtype=np.int64)
        apply_updates_direct([1, 1], np.array([5, 9]), out, "store")
        assert out[1] == 9

    def test_callable_op(self):
        log = []
        apply_updates_direct(
            [2, 0], np.array([10, 20]), None, lambda out, i, v: log.append((i, v))
        )
        assert log == [(2, 10), (0, 20)]

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown op"):
            apply_updates_direct([0], [1.0], np.zeros(1), "xor")


class TestPropagationBlocker:
    def test_num_bins_default(self):
        blocker = PropagationBlocker(1 << 16)
        assert blocker.num_bins == 256

    def test_explicit_bin_range(self):
        blocker = PropagationBlocker(1 << 10, bin_range=64)
        assert blocker.num_bins == 16

    def test_both_parameters_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            PropagationBlocker(100, num_bins=4, bin_range=32)

    def test_add_matches_direct(self, rng):
        n = 1 << 12
        indices = rng.integers(0, n, size=5000)
        values = rng.standard_normal(5000)
        direct = apply_updates_direct(indices, values, np.zeros(n), "add")
        blocked = PropagationBlocker(n, num_bins=16).execute(
            indices, values, np.zeros(n), "add"
        )
        assert np.allclose(direct, blocked)

    def test_or_matches_direct(self, rng):
        n = 512
        indices = rng.integers(0, n, size=2000)
        values = rng.integers(0, 2**30, size=2000)
        direct = apply_updates_direct(
            indices, values, np.zeros(n, dtype=np.int64), "or"
        )
        blocked = PropagationBlocker(n, num_bins=8).execute(
            indices, values, np.zeros(n, dtype=np.int64), "or"
        )
        assert np.array_equal(direct, blocked)

    def test_store_matches_direct(self, rng):
        # Stable binning preserves per-index order, so last-writer-wins
        # survives the reordering.
        n = 256
        indices = rng.integers(0, n, size=1000)
        values = np.arange(1000)
        direct = apply_updates_direct(
            indices, values, np.zeros(n, dtype=np.int64), "store"
        )
        blocked = PropagationBlocker(n, num_bins=8).execute(
            indices, values, np.zeros(n, dtype=np.int64), "store"
        )
        assert np.array_equal(direct, blocked)

    def test_callable_sees_bin_major_order(self):
        blocker = PropagationBlocker(64, bin_range=16)
        visited = []
        blocker.execute(
            np.array([50, 1, 20, 2]),
            np.arange(4),
            None,
            lambda out, i, v: visited.append(i),
        )
        assert visited == [1, 2, 20, 50]

    def test_accumulate_order_is_stable_by_bin(self):
        blocker = PropagationBlocker(64, bin_range=16)
        indices = np.array([50, 1, 20, 2, 51])
        order = blocker.accumulate_order(indices)
        assert indices[order].tolist() == [1, 2, 20, 50, 51]

    @given(
        st.lists(st.integers(0, 127), min_size=1, max_size=300),
        st.sampled_from([1, 4, 16, 128]),
    )
    @settings(max_examples=50, deadline=None)
    def test_commutative_add_invariant(self, raw, num_bins):
        indices = np.array(raw, dtype=np.int64)
        values = np.arange(len(raw), dtype=np.float64)
        direct = apply_updates_direct(indices, values, np.zeros(128), "add")
        blocked = PropagationBlocker(128, num_bins=num_bins).execute(
            indices, values, np.zeros(128), "add"
        )
        assert np.allclose(direct, blocked)
