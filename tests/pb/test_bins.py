"""Tests for bin geometry and the binning primitive."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pb import BinSpec, bin_counts, bin_offsets, bin_updates


class TestBinSpec:
    def test_num_bins(self):
        spec = BinSpec(num_indices=1000, bin_range=256)
        assert spec.num_bins == 4

    def test_power_of_two_enforced(self):
        with pytest.raises(ValueError, match="power of two"):
            BinSpec(1000, 100)

    def test_from_num_bins(self):
        spec = BinSpec.from_num_bins(1 << 16, 256)
        assert spec.bin_range == 256
        assert spec.num_bins == 256

    def test_from_num_bins_rounds_range_up(self):
        spec = BinSpec.from_num_bins(1000, 3)
        assert spec.bin_range == 512  # ceil(1000/3)=334 -> 512
        assert spec.num_bins == 2

    def test_shift_matches_range(self):
        spec = BinSpec(1 << 12, 64)
        assert spec.shift == 6
        assert spec.bin_of(63) == 0
        assert spec.bin_of(64) == 1

    def test_bin_of_bounds(self):
        spec = BinSpec(100, 32)
        with pytest.raises(IndexError):
            spec.bin_of(100)

    def test_bins_of_vectorized(self):
        spec = BinSpec(256, 16)
        indices = np.arange(256)
        assert np.array_equal(spec.bins_of(indices), indices // 16)


class TestBinCounts:
    def test_counts(self):
        spec = BinSpec(64, 16)
        counts = bin_counts(np.array([0, 1, 17, 63]), spec)
        assert np.array_equal(counts, [2, 1, 0, 1])

    def test_offsets_exclusive(self):
        offsets = bin_offsets(np.array([2, 0, 3]))
        assert np.array_equal(offsets, [0, 2, 2, 5])


class TestBinUpdates:
    def test_bin_major_order(self):
        spec = BinSpec(64, 16)
        indices = np.array([40, 3, 20, 5, 60])
        binned, vals, offsets = bin_updates(indices, np.arange(5), spec)
        assert np.array_equal(binned, [3, 5, 20, 40, 60])
        assert np.array_equal(vals, [1, 3, 2, 0, 4])

    def test_fifo_within_bin(self):
        spec = BinSpec(64, 64)  # everything in one bin
        indices = np.array([9, 2, 7, 2])
        binned, vals, _ = bin_updates(indices, np.arange(4), spec)
        assert np.array_equal(binned, indices)  # order preserved
        assert np.array_equal(vals, np.arange(4))

    def test_values_none(self):
        spec = BinSpec(64, 16)
        binned, vals, offsets = bin_updates(np.array([20, 3]), None, spec)
        assert vals is None
        assert np.array_equal(binned, [3, 20])

    def test_offsets_partition_stream(self):
        spec = BinSpec(64, 16)
        indices = np.array([40, 3, 20, 5, 60, 61])
        binned, _, offsets = bin_updates(indices, None, spec)
        for b in range(spec.num_bins):
            chunk = binned[offsets[b] : offsets[b + 1]]
            assert np.all(chunk >> spec.shift == b)

    def test_out_of_range_rejected(self):
        spec = BinSpec(64, 16)
        with pytest.raises(ValueError, match="beyond"):
            bin_updates(np.array([64]), None, spec)

    def test_value_length_checked(self):
        spec = BinSpec(64, 16)
        with pytest.raises(ValueError, match="parallel"):
            bin_updates(np.array([1, 2]), np.array([1.0]), spec)

    @given(
        st.lists(st.integers(0, 1023), min_size=0, max_size=500),
        st.sampled_from([16, 64, 256, 1024]),
    )
    @settings(max_examples=60, deadline=None)
    def test_binning_is_a_permutation(self, raw, bin_range):
        indices = np.array(raw, dtype=np.int64)
        spec = BinSpec(1024, bin_range)
        values = np.arange(len(indices))
        binned, vals, offsets = bin_updates(indices, values, spec)
        # Same multiset of (index, value) pairs.
        assert sorted(zip(binned, vals)) == sorted(zip(indices, values))
        # Offsets end at the stream length and bins are range-disjoint.
        assert offsets[-1] == len(indices)
        assert np.all(np.diff(binned >> spec.shift) >= 0)
