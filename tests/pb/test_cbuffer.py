"""Tests for the software coalescing-buffer model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pb import BinSpec, CBufferModel


@pytest.fixture
def model():
    return CBufferModel(BinSpec(256, 64), tuple_bytes=8)


class TestGeometry:
    def test_tuples_per_line(self, model):
        assert model.tuples_per_line == 8

    def test_footprint(self, model):
        assert model.num_buffers == 4
        assert model.footprint_bytes == 4 * 64

    def test_tuple_must_divide_line(self):
        with pytest.raises(ValueError, match="divide"):
            CBufferModel(BinSpec(256, 64), tuple_bytes=24)

    def test_small_tuples_pack_more(self):
        model = CBufferModel(BinSpec(256, 64), tuple_bytes=4)
        assert model.tuples_per_line == 16


class TestOccupancyTracking:
    def test_occupancy_counts_per_bin(self, model):
        indices = np.array([0, 1, 2, 70, 3])
        occupancy = model.occupancy_before(indices)
        assert np.array_equal(occupancy, [0, 1, 2, 0, 3])

    def test_occupancy_wraps_at_line(self, model):
        indices = np.zeros(10, dtype=np.int64)
        occupancy = model.occupancy_before(indices)
        assert np.array_equal(occupancy, [0, 1, 2, 3, 4, 5, 6, 7, 0, 1])

    def test_full_events_every_eighth(self, model):
        indices = np.zeros(17, dtype=np.int64)
        full = model.full_events(indices)
        assert np.flatnonzero(full).tolist() == [7, 15]

    @given(st.lists(st.integers(0, 255), min_size=0, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_full_event_count_matches_floor(self, raw):
        indices = np.array(raw, dtype=np.int64)
        model = CBufferModel(BinSpec(256, 64), tuple_bytes=8)
        full = model.full_events(indices)
        per_bin = np.bincount(indices // 64, minlength=4)
        assert full.sum() == np.sum(per_bin // 8)


class TestTransferCounts:
    def test_full_and_partial_lines(self, model):
        # Bin 0 gets 9 tuples (1 full + 1 partial), bin 1 gets 8 (1 full).
        indices = np.array([0] * 9 + [64] * 8)
        full, partial = model.transfer_counts(indices)
        assert full == 2
        assert partial == 1

    def test_empty_stream(self, model):
        assert model.transfer_counts(np.array([], dtype=np.int64)) == (0, 0)

    def test_bin_write_lines(self, model):
        assert model.bin_write_lines(9) == 2  # 72 bytes -> 2 lines
