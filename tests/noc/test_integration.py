"""Cross-checks between the NoC model and the rest of the system."""

from repro.harness import DEFAULT_MACHINE
from repro.noc import Mesh2D, NocModel


class TestGrounding:
    def test_mesh_matches_table_ii(self):
        """Table II: 4x4 mesh, 2-cycle hops, 64-bit links."""
        model = NocModel()
        assert model.mesh.num_nodes == 16
        assert model.params.hop_cycles == 2
        assert model.params.link_bytes_per_cycle == 8

    def test_remote_llc_latency_consistent_with_machine(self):
        """CoreParams.llc_remote_latency must stay within the band the NoC
        model derives, or the fig15 tiling comparison drifts."""
        model = NocModel()
        derived = model.remote_llc_latency(
            local_llc_cycles=DEFAULT_MACHINE.core.llc_latency
        )
        configured = DEFAULT_MACHINE.core.llc_remote_latency
        assert abs(derived - configured) / configured < 0.25

    def test_bank_count_matches_core_count(self):
        from repro.harness.parallel import BASE_CORES

        assert Mesh2D().num_nodes == BASE_CORES


class TestContentionScenarios:
    def test_binning_traffic_fits_the_mesh(self):
        """COBRA's LLC-eviction traffic is tiny relative to mesh capacity:
        one 64 B line per 8 tuples, spread over a Binning phase."""
        model = NocModel()
        # 2M tuples -> 256k lines over ~4M cycles, uniformly to banks.
        traffic = model.uniform_traffic(bytes_per_node=256_000 * 64 / 16)
        factor = model.contention_factor(traffic, cycles=4_000_000)
        assert factor < 1.5

    def test_saturating_traffic_detected(self):
        model = NocModel()
        traffic = model.uniform_traffic(bytes_per_node=10**9)
        assert model.contention_factor(traffic, cycles=1_000) == 100.0

    def test_hotspot_worse_than_uniform(self):
        model = NocModel()
        volume = 200_000.0
        uniform = model.contention_factor(
            model.uniform_traffic(volume), cycles=100_000
        )
        hotspot = model.contention_factor(
            {(src, 5): volume for src in range(16) if src != 5},
            cycles=100_000,
        )
        assert hotspot > uniform
