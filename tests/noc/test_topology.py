"""Tests for the mesh topology."""

import pytest

from repro.noc import Mesh2D


@pytest.fixture
def mesh():
    return Mesh2D(4, 4)


class TestGeometry:
    def test_num_nodes(self, mesh):
        assert mesh.num_nodes == 16

    def test_coordinates_round_trip(self, mesh):
        for node in range(16):
            x, y = mesh.coordinates(node)
            assert mesh.node_at(x, y) == node

    def test_bad_node_rejected(self, mesh):
        with pytest.raises(IndexError):
            mesh.coordinates(16)
        with pytest.raises(IndexError):
            mesh.node_at(4, 0)


class TestRouting:
    def test_hops_is_manhattan(self, mesh):
        assert mesh.hops(0, 15) == 6  # (0,0) -> (3,3)
        assert mesh.hops(0, 0) == 0
        assert mesh.hops(0, 3) == 3

    def test_hops_symmetric(self, mesh):
        for src in range(16):
            for dst in range(16):
                assert mesh.hops(src, dst) == mesh.hops(dst, src)

    def test_route_goes_x_first(self, mesh):
        path = mesh.route(0, 5)  # (0,0) -> (1,1)
        assert path == [0, 1, 5]

    def test_route_length_matches_hops(self, mesh):
        for src in (0, 7, 15):
            for dst in range(16):
                assert len(mesh.route(src, dst)) == mesh.hops(src, dst) + 1

    def test_route_steps_are_adjacent(self, mesh):
        for a, b in mesh.links_on_route(0, 15):
            ax, ay = mesh.coordinates(a)
            bx, by = mesh.coordinates(b)
            assert abs(ax - bx) + abs(ay - by) == 1


class TestAggregates:
    def test_mean_hops_4x4(self, mesh):
        # Mean Manhattan distance on a 4x4 mesh over distinct pairs.
        expected = sum(
            mesh.hops(s, d) for s in range(16) for d in range(16) if s != d
        ) / (16 * 15)
        assert mesh.mean_hops() == pytest.approx(expected)
        assert 2.5 < mesh.mean_hops() < 3.0

    def test_mean_hops_from_corner_exceeds_center(self, mesh):
        corner = mesh.mean_hops(from_node=0)
        center = mesh.mean_hops(from_node=5)
        assert corner > center

    def test_bisection(self, mesh):
        assert mesh.bisection_links() == 8

    def test_all_links_count(self, mesh):
        # 2 * (width-1) * height horizontal + 2 * width * (height-1) vertical.
        assert len(mesh.all_links()) == 2 * 3 * 4 + 2 * 4 * 3

    def test_single_node_mesh(self):
        tiny = Mesh2D(1, 1)
        assert tiny.mean_hops() == 0.0
        assert tiny.all_links() == []
        assert tiny.bisection_links() == 0
