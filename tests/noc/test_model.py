"""Tests for the analytic NoC model."""

import pytest

from repro.cpu import CoreParams
from repro.noc import Mesh2D, NocModel, NocParams


@pytest.fixture
def model():
    return NocModel()


class TestLatency:
    def test_zero_hop_message_is_serialization_only(self, model):
        assert model.message_latency(3, 3, payload_bytes=64) == 8

    def test_latency_grows_with_distance(self, model):
        near = model.message_latency(0, 1)
        far = model.message_latency(0, 15)
        assert far > near

    def test_mean_remote_latency_between_extremes(self, model):
        lo = model.message_latency(0, 1)
        hi = model.message_latency(0, 15)
        assert lo <= model.mean_remote_latency() <= hi

    def test_remote_llc_latency_grounds_core_params(self, model):
        """The default CoreParams.llc_remote_latency comes from this model:
        local bank + mesh round trip lands in the mid-40s."""
        remote = model.remote_llc_latency(local_llc_cycles=21)
        assert 38 < remote < 55
        assert abs(remote - CoreParams().llc_remote_latency) < 10


class TestLoad:
    def test_link_loads_follow_xy_routes(self, model):
        loads = model.link_loads({(0, 2): 100.0})
        assert loads[(0, 1)] == 100.0
        assert loads[(1, 2)] == 100.0
        assert loads[(1, 0)] == 0.0

    def test_self_traffic_ignored(self, model):
        loads = model.link_loads({(5, 5): 1000.0})
        assert all(v == 0.0 for v in loads.values())

    def test_contention_grows_with_load(self, model):
        light = model.contention_factor({(0, 3): 1000.0}, cycles=10_000)
        heavy = model.contention_factor({(0, 3): 60_000.0}, cycles=10_000)
        assert 1.0 <= light < heavy

    def test_contention_capped_at_saturation(self, model):
        factor = model.contention_factor({(0, 3): 10**9}, cycles=100)
        assert factor == 100.0

    def test_uniform_traffic_covers_all_pairs(self, model):
        traffic = model.uniform_traffic(1500.0)
        assert len(traffic) == 16 * 15
        assert sum(traffic.values()) == pytest.approx(16 * 1500.0)

    def test_uniform_traffic_loads_center_links_most(self, model):
        loads = model.link_loads(model.uniform_traffic(1000.0))
        mesh = Mesh2D()
        center_link = (mesh.node_at(1, 1), mesh.node_at(2, 1))
        edge_link = (mesh.node_at(0, 0), mesh.node_at(0, 1))
        assert loads[center_link] > loads[edge_link]


class TestParams:
    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            NocParams(hop_cycles=0)

    def test_small_payload_serializes_faster(self, model):
        req = model.message_latency(0, 15, payload_bytes=8)
        line = model.message_latency(0, 15, payload_bytes=64)
        assert line - req == 7
