"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_run_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_run_accepts_scale(self):
        args = build_parser().parse_args(["run", "fig04", "--scale", "15"])
        assert args.scale == 15
        assert args.experiments == ["fig04"]

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_accepts_fault_and_telemetry_flags(self):
        args = build_parser().parse_args(
            [
                "run", "fig04", "--timeout", "600", "--retries", "3",
                "--telemetry", "run.jsonl",
            ]
        )
        assert args.timeout == 600.0
        assert args.retries == 3
        assert args.telemetry == "run.jsonl"

    def test_run_accepts_checkpoint_flags(self):
        args = build_parser().parse_args(
            ["run", "fig02", "--checkpoint-dir", "--heartbeat-timeout", "5"]
        )
        assert args.checkpoint_dir is True  # bare flag => default root
        assert args.heartbeat_timeout == 5.0
        args = build_parser().parse_args(
            ["run", "fig02", "--checkpoint-dir", "runs/"]
        )
        assert args.checkpoint_dir == "runs/"

    def test_runs_command(self):
        args = build_parser().parse_args(["runs"])
        assert args.command == "runs"
        assert args.checkpoint_dir is None

    def test_resume_requires_run_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["resume"])

    def test_resume_accepts_executor_flags(self):
        args = build_parser().parse_args(
            [
                "resume", "1f2e3d4c5b6a", "--checkpoint-dir", "runs/",
                "--jobs", "4", "--no-cache", "--heartbeat-timeout", "30",
            ]
        )
        assert args.run_id == "1f2e3d4c5b6a"
        assert args.checkpoint_dir == "runs/"
        assert args.jobs == 4
        assert args.no_cache is True
        assert args.heartbeat_timeout == 30.0

    def test_report_accepts_telemetry_path(self):
        args = build_parser().parse_args(
            ["report", "--telemetry", "run.jsonl", "--slowest", "3"]
        )
        assert args.command == "report"
        assert args.telemetry == "run.jsonl"
        assert args.slowest == 3

    def test_report_accepts_replay_artifact(self):
        args = build_parser().parse_args(["report", "--replay", "r.json"])
        assert args.replay == "r.json"
        assert args.telemetry is None

    def test_capture_and_replay_flags(self):
        args = build_parser().parse_args(
            ["capture", "--scale", "14", "--golden-dir", "g/"]
        )
        assert args.command == "capture"
        assert args.scale == 14
        assert args.golden_dir == "g/"
        args = build_parser().parse_args(
            [
                "replay", "--gate", "counters", "--time-band", "0.25",
                "--report", "out.json", "--json",
            ]
        )
        assert args.gate == "counters"
        assert args.time_band == 0.25
        assert args.report == "out.json"
        assert args.json is True

    def test_replay_rejects_unknown_gate(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["replay", "--gate", "vibes"])

    def test_trend_flags(self):
        args = build_parser().parse_args(
            ["trend", "--results-dir", "r/", "--json"]
        )
        assert args.command == "trend"
        assert args.results_dir == "r/"
        assert args.json is True


class TestCommands:
    def collect(self, argv):
        lines = []
        code = main(argv, print_fn=lines.append)
        return code, "\n".join(str(line) for line in lines)

    def test_list_mentions_every_experiment(self):
        code, output = self.collect(["list"])
        assert code == 0
        for name in EXPERIMENTS:
            assert name in output

    def test_machine_describes_hierarchy(self):
        code, output = self.collect(["machine"])
        assert code == 0
        assert "L1D" in output and "LLC" in output and "DRAM" in output

    def test_inputs_prints_suite(self):
        code, output = self.collect(["inputs"])
        assert code == 0
        assert "KRON" in output and "POIS" in output

    def test_run_single_experiment(self):
        code, output = self.collect(["run", "table1", "--scale", "14"])
        assert code == 0
        assert "Table I" in output

    def test_run_multiple_experiments(self):
        code, output = self.collect(
            ["run", "fig13c", "fig04", "--scale", "14"]
        )
        assert code == 0
        assert "Figure 13c" in output
        assert "Figure 4" in output

    def test_run_writes_telemetry_and_report_summarizes_it(
        self, tmp_path, monkeypatch
    ):
        from repro.harness.experiments import common

        monkeypatch.setattr(common, "_RUNNER", None)
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path / "cache"))
        telemetry = tmp_path / "run.jsonl"
        code, _ = self.collect(
            ["run", "table1", "--scale", "14", "--telemetry", str(telemetry)]
        )
        monkeypatch.setattr(common, "_RUNNER", None)
        assert code == 0
        assert telemetry.is_file()
        from repro.harness.telemetry import read_events

        assert any(
            e["event"] == "phase_timed" for e in read_events(telemetry)
        )
        code, output = self.collect(["report", "--telemetry", str(telemetry)])
        assert code == 0
        assert "Telemetry summary" in output
        assert "Simulation wall-clock by phase" in output

    def test_report_on_missing_file_fails_cleanly(self, tmp_path):
        code, output = self.collect(
            ["report", "--telemetry", str(tmp_path / "absent.jsonl")]
        )
        assert code == 1
        assert "cannot read telemetry file" in output

    def test_fault_flags_install_policy(self, tmp_path, monkeypatch):
        from repro.harness.experiments import common

        monkeypatch.setattr(common, "_RUNNER", None)
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path / "cache"))
        code, output = self.collect(
            [
                "run", "table1", "--scale", "14",
                "--timeout", "600", "--retries", "1",
            ]
        )
        assert code == 0
        runner = common._RUNNER
        assert runner.fault_policy is not None
        assert runner.fault_policy.timeout == 600.0
        assert runner.fault_policy.retries == 1
        monkeypatch.setattr(common, "_RUNNER", None)


class TestCheckpointCommands:
    def collect(self, argv):
        lines = []
        code = main(argv, print_fn=lines.append)
        return code, "\n".join(str(line) for line in lines)

    def make_run(self, root, record=()):
        """Journal a two-point run under ``root``; return (id, results)."""
        from repro.harness import Runner
        from repro.harness.checkpoint import SweepCheckpoint
        from repro.harness.inputs import make_workload
        from repro.harness.modes import BASELINE, PB_SW

        graph = make_workload("degree-count", "KRON", scale=13)
        points = [(graph, BASELINE), (graph, PB_SW)]
        runner = Runner(max_sim_events=20_000)
        results = runner.run_many(points)
        checkpoint = SweepCheckpoint.attach(
            root, runner, points, label="cli-test"
        )
        for index in record:
            checkpoint.record(index, results[index])
        checkpoint.close()
        return checkpoint.run_id, results

    def test_runs_lists_checkpointed_runs(self, tmp_path):
        run_id, _ = self.make_run(tmp_path, record=[0])
        code, output = self.collect(
            ["runs", "--checkpoint-dir", str(tmp_path)]
        )
        assert code == 0
        assert run_id in output
        assert "cli-test" in output
        assert "1/2" in output

    def test_runs_on_empty_root(self, tmp_path):
        code, output = self.collect(
            ["runs", "--checkpoint-dir", str(tmp_path)]
        )
        assert code == 0
        assert "no checkpointed runs" in output

    def test_resume_finishes_pending_points(self, tmp_path, monkeypatch):
        from repro.harness import Runner
        from repro.harness.checkpoint import STATUS_COMPLETED, SweepCheckpoint
        from repro.harness.experiments import common

        run_id, _ = self.make_run(tmp_path, record=[0])
        monkeypatch.setattr(
            common, "_RUNNER", Runner(max_sim_events=20_000)
        )
        code, output = self.collect(
            [
                "resume", run_id,
                "--checkpoint-dir", str(tmp_path), "--no-cache",
            ]
        )
        monkeypatch.setattr(common, "_RUNNER", None)
        assert code == 0
        assert "completed: 2/2 points" in output
        reloaded = SweepCheckpoint.load(tmp_path, run_id)
        assert reloaded.status == STATUS_COMPLETED
        assert sorted(reloaded.completed_counters()) == [0, 1]

    def test_resume_unknown_run_fails_and_lists_runs(self, tmp_path):
        run_id, _ = self.make_run(tmp_path, record=[0])
        code, output = self.collect(
            [
                "resume", "feedfacecafe",
                "--checkpoint-dir", str(tmp_path), "--no-cache",
            ]
        )
        assert code == 1
        assert "no checkpointed run" in output
        assert run_id in output  # the known-runs listing helps recovery


class TestGoldenCommands:
    """End-to-end capture -> replay -> report cycle through the CLI."""

    def collect(self, argv):
        lines = []
        code = main(argv, print_fn=lines.append)
        return code, "\n".join(str(line) for line in lines)

    @pytest.fixture()
    def isolated(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_GOLDEN_DIR", str(tmp_path / "golden"))
        monkeypatch.delenv("REPRO_REPLAY_PERTURB", raising=False)
        return tmp_path

    def test_capture_then_honest_replay_passes(self, isolated):
        code, output = self.collect(["capture"])
        assert code == 0
        assert "6 golden(s)" in output
        code, output = self.collect(["replay", "--time-band", "1e9"])
        assert code == 0
        assert "pass 6  fail 0" in output
        assert "counters bit-identical" in output

    def test_perturbed_replay_fails_counters_gate(
        self, isolated, monkeypatch
    ):
        assert self.collect(["capture"])[0] == 0
        monkeypatch.setenv("REPRO_REPLAY_PERTURB", "3")
        report_path = isolated / "replay.json"
        code, output = self.collect(
            [
                "replay", "--gate", "counters", "--time-band", "1e9",
                "--report", str(report_path),
            ]
        )
        assert code == 1
        assert "COUNTER DRIFT DETECTED" in output
        assert "phases[0].instructions" in output
        # The artifact renders identically through `report --replay`.
        code, rendered = self.collect(
            ["report", "--replay", str(report_path)]
        )
        assert code == 0
        assert "COUNTER DRIFT DETECTED" in rendered

    def test_replay_emits_json_payload(self, isolated):
        assert self.collect(["capture"])[0] == 0
        code, output = self.collect(
            ["replay", "--json", "--time-band", "1e9"]
        )
        assert code == 0
        import json

        payload = json.loads(output)
        assert payload["ok"] is True
        assert payload["summary"]["pass"] == 6

    def test_replay_against_empty_store_bootstraps_green(self, isolated):
        code, output = self.collect(["replay"])
        assert code == 0
        assert "missing 6" in output
        assert "need recapture" in output

    def test_report_needs_exactly_one_source(self, tmp_path):
        code, output = self.collect(["report"])
        assert code == 2
        assert "exactly one" in output
        code, output = self.collect(
            ["report", "--telemetry", "a", "--replay", "b"]
        )
        assert code == 2

    def test_report_on_unreadable_replay_artifact(self, tmp_path):
        code, output = self.collect(
            ["report", "--replay", str(tmp_path / "absent.json")]
        )
        assert code == 1
        assert "cannot read replay report" in output

    def test_trend_renders_accumulated_history(self, tmp_path):
        from repro.harness.benchhistory import append_bench_record

        path = tmp_path / "BENCH_demo.json"
        append_bench_record(path, {"speedup": 2.0}, git_sha="a" * 40)
        append_bench_record(path, {"speedup": 3.0}, git_sha="b" * 40)
        code, output = self.collect(
            ["trend", "--results-dir", str(tmp_path)]
        )
        assert code == 0
        assert "demo (2 entries)" in output
        assert "net change (newest vs oldest): speedup +50.0%" in output

    def test_trend_json_mode(self, tmp_path):
        from repro.harness.benchhistory import append_bench_record

        append_bench_record(
            tmp_path / "BENCH_demo.json", {"speedup": 2.0}, git_sha="x"
        )
        code, output = self.collect(
            ["trend", "--results-dir", str(tmp_path), "--json"]
        )
        assert code == 0
        import json

        data = json.loads(output)
        assert data["benches"][0]["bench"] == "demo"


def test_registry_matches_design_doc():
    # Every evaluation artifact of the paper has a CLI entry.
    expected = {
        "fig02", "fig04", "fig05", "fig10", "fig10x", "fig11", "fig12",
        "fig13a", "fig13b", "fig13c", "fig14", "fig15", "table1",
        "scaling", "mrc",
    }
    assert set(EXPERIMENTS) == expected


class TestServiceCommands:
    def collect(self, argv):
        lines = []
        code = main(argv, print_fn=lines.append)
        return code, "\n".join(str(line) for line in lines)

    def test_serve_flags(self):
        args = build_parser().parse_args(
            [
                "serve", "--port", "0", "--state-dir", "/tmp/svc",
                "--queue-max", "4", "--client-max", "2", "--jobs", "3",
                "--drain-deadline", "5", "--telemetry", "t.jsonl",
                "--timeout", "60", "--heartbeat-timeout", "2",
            ]
        )
        assert args.command == "serve"
        assert args.port == 0
        assert args.queue_max == 4
        assert args.client_max == 2
        assert args.jobs == 3
        assert args.drain_deadline == 5.0
        assert args.heartbeat_timeout == 2.0

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port is None  # resolved via REPRO_SERVICE_PORT
        assert args.state_dir is None
        assert args.jobs == 2

    def test_submit_flags(self):
        args = build_parser().parse_args(
            [
                "submit", "degree-count:KRON:13:cobra",
                "integer-sort:U16:13",
                "--label", "L", "--client", "me", "--wait",
                "--state-dir", "/tmp/svc",
            ]
        )
        assert args.command == "submit"
        assert len(args.points) == 2
        assert args.wait

    def test_submit_requires_points(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit"])

    def test_jobs_flags(self):
        args = build_parser().parse_args(
            ["jobs", "--json", "--port", "8377"]
        )
        assert args.command == "jobs"
        assert args.json and args.port == 8377

    def test_submit_bad_point_spec_is_exit_2(self, tmp_path):
        code, output = self.collect(
            ["submit", "not-a-spec", "--state-dir", str(tmp_path)]
        )
        assert code == 2
        assert "workload:input:scale" in output

    def test_submit_without_daemon_fails_cleanly(self, tmp_path):
        code, output = self.collect(
            [
                "submit", "degree-count:KRON:8",
                "--state-dir", str(tmp_path / "empty"),
            ]
        )
        assert code == 1
        assert "submit failed" in output

    def test_jobs_without_daemon_fails_cleanly(self, tmp_path):
        code, output = self.collect(
            ["jobs", "--state-dir", str(tmp_path / "empty")]
        )
        assert code == 1
        assert "cannot reach" in output


class TestRunsJson:
    def test_runs_json_shares_service_serializer(self, tmp_path):
        import json as jsonlib

        lines = []
        helper = TestCheckpointCommands()
        run_id, _ = helper.make_run(tmp_path, record=[0])
        code = main(
            ["runs", "--checkpoint-dir", str(tmp_path), "--json"],
            print_fn=lines.append,
        )
        assert code == 0
        payload = jsonlib.loads("\n".join(lines))
        from repro.harness.checkpoint import FORMAT_VERSION

        assert payload["version"] == FORMAT_VERSION
        (run,) = payload["runs"]
        assert run["run_id"] == run_id
        assert run["label"] == "cli-test"
        assert run["completed"] == 1 and run["total"] == 2
        # Same key set the sweep service embeds per job under "run".
        assert set(run) == {
            "run_id", "label", "status", "completed", "total", "updated"
        }

    def test_runs_json_empty_root(self, tmp_path):
        import json as jsonlib

        lines = []
        code = main(
            ["runs", "--checkpoint-dir", str(tmp_path), "--json"],
            print_fn=lines.append,
        )
        assert code == 0
        assert jsonlib.loads("\n".join(lines))["runs"] == []


class TestWorkloadRegistryCLI:
    """The registry-facing surfaces: `workloads`, `point --spec`, and
    slash-form specs on `submit` and `capture`."""

    def collect(self, argv):
        lines = []
        code = main(argv, print_fn=lines.append)
        return code, "\n".join(str(line) for line in lines)

    def test_parser_accepts_point_spec(self):
        args = build_parser().parse_args(
            ["point", "--spec", "degree-count/KRON@12", "--mode", "cobra"]
        )
        assert args.spec == "degree-count/KRON@12"
        assert args.workload is None and args.input is None

    def test_parser_keeps_deprecated_positionals(self):
        args = build_parser().parse_args(["point", "degree-count", "KRON"])
        assert args.workload == "degree-count"
        assert args.input == "KRON"
        assert args.spec is None

    def test_parser_accepts_capture_specs(self):
        args = build_parser().parse_args(
            ["capture", "--spec", "csr-build/KARATE:cobra",
             "--spec", "degree-count/KRON@12"]
        )
        assert args.spec == [
            "csr-build/KARATE:cobra", "degree-count/KRON@12"
        ]

    def test_workloads_lists_full_registry(self):
        from repro.workloads.registry import WORKLOADS

        code, output = self.collect(["workloads"])
        assert code == 0
        for name in WORKLOADS:
            assert name in output
        assert "Workload registry" in output

    def test_workloads_json_is_machine_readable(self):
        import json

        from repro.workloads.registry import WORKLOADS

        code, output = self.collect(["workloads", "--json"])
        assert code == 0
        rows = json.loads(output)
        assert {row["workload"] for row in rows} == set(WORKLOADS)
        by_name = {row["workload"]: row for row in rows}
        assert by_name["csr-build"]["extension"] is True
        assert "csr-build/KARATE@6" in by_name["csr-build"]["specs"]

    def test_inputs_lists_ingested_datasets(self):
        code, output = self.collect(["inputs"])
        assert code == 0
        assert "KARATE" in output and "FLORENT" in output

    def test_point_spec_runs_end_to_end(self):
        code, output = self.collect(
            ["point", "--spec", "degree-count/KRON@10", "--no-cache"]
        )
        assert code == 0
        assert "degree-count" in output
        assert "total:" in output

    def test_point_spec_runs_ingested_graph(self):
        code, output = self.collect(
            ["point", "--spec", "csr-build/KARATE", "--no-cache", "--json"]
        )
        assert code == 0
        import json

        payload = json.loads(output)
        assert payload["workload"] == "csr-build"

    def test_point_rejects_spec_plus_positionals(self):
        code, output = self.collect(
            ["point", "degree-count", "KRON", "--spec", "degree-count/KRON"]
        )
        assert code == 2
        assert "either --spec or positional" in output

    def test_point_rejects_double_scale(self):
        code, output = self.collect(
            ["point", "--spec", "degree-count/KRON@10", "--scale", "11"]
        )
        assert code == 2
        assert "either in --spec or via --scale" in output

    def test_point_without_any_point_is_exit_2(self):
        code, output = self.collect(["point"])
        assert code == 2
        assert "--spec" in output

    def test_point_rejects_fixed_scale_conflict(self):
        code, output = self.collect(
            ["point", "--spec", "csr-build/KARATE@12", "--no-cache"]
        )
        assert code == 2
        assert "fixed at" in output

    def test_submit_accepts_slash_spec_form(self, tmp_path):
        # Spec parses (so no exit 2); the daemon is absent (exit 1).
        code, output = self.collect(
            [
                "submit", "degree-count/KRON@8:cobra",
                "--state-dir", str(tmp_path / "empty"),
            ]
        )
        assert code == 1
        assert "submit failed" in output

    def test_submit_slash_spec_with_unknown_workload_is_exit_2(
        self, tmp_path
    ):
        code, output = self.collect(
            ["submit", "nope/KRON@8", "--state-dir", str(tmp_path)]
        )
        assert code == 2
        assert "unknown workload" in output
