"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_run_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_run_accepts_scale(self):
        args = build_parser().parse_args(["run", "fig04", "--scale", "15"])
        assert args.scale == 15
        assert args.experiments == ["fig04"]

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def collect(self, argv):
        lines = []
        code = main(argv, print_fn=lines.append)
        return code, "\n".join(str(line) for line in lines)

    def test_list_mentions_every_experiment(self):
        code, output = self.collect(["list"])
        assert code == 0
        for name in EXPERIMENTS:
            assert name in output

    def test_machine_describes_hierarchy(self):
        code, output = self.collect(["machine"])
        assert code == 0
        assert "L1D" in output and "LLC" in output and "DRAM" in output

    def test_inputs_prints_suite(self):
        code, output = self.collect(["inputs"])
        assert code == 0
        assert "KRON" in output and "POIS" in output

    def test_run_single_experiment(self):
        code, output = self.collect(["run", "table1", "--scale", "14"])
        assert code == 0
        assert "Table I" in output

    def test_run_multiple_experiments(self):
        code, output = self.collect(
            ["run", "fig13c", "fig04", "--scale", "14"]
        )
        assert code == 0
        assert "Figure 13c" in output
        assert "Figure 4" in output


def test_registry_matches_design_doc():
    # Every evaluation artifact of the paper has a CLI entry.
    expected = {
        "fig02", "fig04", "fig05", "fig10", "fig11", "fig12",
        "fig13a", "fig13b", "fig13c", "fig14", "fig15", "table1",
        "scaling", "mrc",
    }
    assert set(EXPERIMENTS) == expected
