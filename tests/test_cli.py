"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_run_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_run_accepts_scale(self):
        args = build_parser().parse_args(["run", "fig04", "--scale", "15"])
        assert args.scale == 15
        assert args.experiments == ["fig04"]

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_accepts_fault_and_telemetry_flags(self):
        args = build_parser().parse_args(
            [
                "run", "fig04", "--timeout", "600", "--retries", "3",
                "--telemetry", "run.jsonl",
            ]
        )
        assert args.timeout == 600.0
        assert args.retries == 3
        assert args.telemetry == "run.jsonl"

    def test_report_requires_telemetry(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report"])

    def test_report_accepts_telemetry_path(self):
        args = build_parser().parse_args(
            ["report", "--telemetry", "run.jsonl", "--slowest", "3"]
        )
        assert args.command == "report"
        assert args.telemetry == "run.jsonl"
        assert args.slowest == 3


class TestCommands:
    def collect(self, argv):
        lines = []
        code = main(argv, print_fn=lines.append)
        return code, "\n".join(str(line) for line in lines)

    def test_list_mentions_every_experiment(self):
        code, output = self.collect(["list"])
        assert code == 0
        for name in EXPERIMENTS:
            assert name in output

    def test_machine_describes_hierarchy(self):
        code, output = self.collect(["machine"])
        assert code == 0
        assert "L1D" in output and "LLC" in output and "DRAM" in output

    def test_inputs_prints_suite(self):
        code, output = self.collect(["inputs"])
        assert code == 0
        assert "KRON" in output and "POIS" in output

    def test_run_single_experiment(self):
        code, output = self.collect(["run", "table1", "--scale", "14"])
        assert code == 0
        assert "Table I" in output

    def test_run_multiple_experiments(self):
        code, output = self.collect(
            ["run", "fig13c", "fig04", "--scale", "14"]
        )
        assert code == 0
        assert "Figure 13c" in output
        assert "Figure 4" in output

    def test_run_writes_telemetry_and_report_summarizes_it(
        self, tmp_path, monkeypatch
    ):
        from repro.harness.experiments import common

        monkeypatch.setattr(common, "_RUNNER", None)
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path / "cache"))
        telemetry = tmp_path / "run.jsonl"
        code, _ = self.collect(
            ["run", "table1", "--scale", "14", "--telemetry", str(telemetry)]
        )
        monkeypatch.setattr(common, "_RUNNER", None)
        assert code == 0
        assert telemetry.is_file()
        from repro.harness.telemetry import read_events

        assert any(
            e["event"] == "phase_timed" for e in read_events(telemetry)
        )
        code, output = self.collect(["report", "--telemetry", str(telemetry)])
        assert code == 0
        assert "Telemetry summary" in output
        assert "Simulation wall-clock by phase" in output

    def test_report_on_missing_file_fails_cleanly(self, tmp_path):
        code, output = self.collect(
            ["report", "--telemetry", str(tmp_path / "absent.jsonl")]
        )
        assert code == 1
        assert "cannot read telemetry file" in output

    def test_fault_flags_install_policy(self, tmp_path, monkeypatch):
        from repro.harness.experiments import common

        monkeypatch.setattr(common, "_RUNNER", None)
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path / "cache"))
        code, output = self.collect(
            [
                "run", "table1", "--scale", "14",
                "--timeout", "600", "--retries", "1",
            ]
        )
        assert code == 0
        runner = common._RUNNER
        assert runner.fault_policy is not None
        assert runner.fault_policy.timeout == 600.0
        assert runner.fault_policy.retries == 1
        monkeypatch.setattr(common, "_RUNNER", None)


def test_registry_matches_design_doc():
    # Every evaluation artifact of the paper has a CLI entry.
    expected = {
        "fig02", "fig04", "fig05", "fig10", "fig11", "fig12",
        "fig13a", "fig13b", "fig13c", "fig14", "fig15", "table1",
        "scaling", "mrc",
    }
    assert set(EXPERIMENTS) == expected
