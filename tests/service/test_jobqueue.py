"""Tests for the sweep service engine: admission, execution, recovery."""

import time

import pytest

from repro.harness.checkpoint import FORMAT_VERSION, runs_payload
from repro.harness.resultcache import ResultCache, counters_to_dict
from repro.harness.runner import Runner
from repro.harness.inputs import make_workload
from repro.service.jobqueue import AdmissionError, SweepService

SCALE = 8
GRAPH = {"point": f"degree-count:KRON:{SCALE}", "mode": "baseline"}
GRAPH_COBRA = {"point": f"degree-count:KRON:{SCALE}", "mode": "cobra"}
SORT = {"point": f"integer-sort:U16:{SCALE}", "mode": "baseline"}


def wait_done(service, job_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if not service.jobs[job_id].pending:
            return service.jobs[job_id]
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} still pending after {timeout}s")


def make_service(tmp_path, started=True, **kwargs):
    runner = Runner(
        result_cache=ResultCache(directory=tmp_path / "cache")
    )
    kwargs.setdefault("sweep_jobs", 1)
    kwargs.setdefault("checkpoint_root", tmp_path / "runs")
    service = SweepService(runner, tmp_path / "svc", **kwargs)
    if started:
        service.start()
    return service


class TestExecution:
    def test_submitted_job_completes_bit_identical(self, tmp_path):
        service = make_service(tmp_path)
        record, results, accepted = service.submit(
            [GRAPH, GRAPH_COBRA], label="t"
        )
        assert accepted and results is None
        record = wait_done(service, record.job_id)
        assert record.state == "completed" and record.error is None
        reference = Runner(result_cache=None)
        expected = [
            counters_to_dict(
                reference.run(
                    make_workload("degree-count", "KRON", SCALE),
                    spec["mode"],
                    use_cache=False,
                )
            )
            for spec in (GRAPH, GRAPH_COBRA)
        ]
        assert service.results(record.job_id) == expected
        service.drain()
        service.close()

    def test_duplicate_submission_dedupes(self, tmp_path):
        service = make_service(tmp_path)
        first, _, _ = service.submit([GRAPH])
        wait_done(service, first.job_id)
        again, results, accepted = service.submit([GRAPH])
        assert not accepted
        assert again.job_id == first.job_id
        assert results == service.results(first.job_id)
        service.drain()
        service.close()

    def test_bad_points_rejected_with_message(self, tmp_path):
        service = make_service(tmp_path, started=False)
        with pytest.raises(ValueError, match="non-empty list"):
            service.submit([])
        with pytest.raises(ValueError, match="workload:input:scale"):
            service.submit([{"point": "malformed"}])
        with pytest.raises(ValueError, match="must be positive"):
            service.submit([{"workload": "x", "input": "y", "scale": -1}])
        service.close()

    def test_unknown_workload_fails_job_not_service(self, tmp_path):
        service = make_service(tmp_path)
        record, _, _ = service.submit(
            [{"point": f"no-such-workload:KRON:{SCALE}", "mode": "baseline"}]
        )
        record = wait_done(service, record.job_id)
        assert record.state == "failed"
        assert record.error
        # The worker loop survived; a good job still runs afterwards.
        good, _, _ = service.submit([GRAPH])
        assert wait_done(service, good.job_id).state == "completed"
        service.drain()
        service.close()


class TestAdmission:
    def test_bounded_queue_sheds_with_retry_after(self, tmp_path):
        # No worker: submissions stay queued, so the bound is exact.
        service = make_service(tmp_path, started=False, queue_max=2)
        service.submit([GRAPH])
        service.submit([SORT])
        with pytest.raises(AdmissionError) as excinfo:
            service.submit([GRAPH_COBRA])
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after > 0
        assert service.status()["admission"]["shed"] == 1
        assert service.status()["state"] == "degraded"
        service.close()

    def test_per_client_cap(self, tmp_path):
        service = make_service(
            tmp_path, started=False, queue_max=64, client_max=1
        )
        service.submit([GRAPH], client="alice")
        with pytest.raises(AdmissionError, match="alice"):
            service.submit([SORT], client="alice")
        # Other clients are unaffected by alice's cap.
        service.submit([SORT], client="bob")
        service.close()

    def test_saturated_service_still_serves_cached(self, tmp_path):
        # Warm the cache through a normal run, then saturate the queue:
        # the fully-cached job must still be served (degraded mode).
        service = make_service(tmp_path, queue_max=64)
        record, _, _ = service.submit([GRAPH])
        wait_done(service, record.job_id)
        service.drain()
        service.close()

        saturated = SweepService(
            service.runner,
            tmp_path / "svc2",
            queue_max=0,  # every uncached submission sheds
            sweep_jobs=1,
            checkpoint_root=tmp_path / "runs2",
        )
        with pytest.raises(AdmissionError):
            saturated.submit([SORT])
        cached_record, results, accepted = saturated.submit([GRAPH])
        assert accepted
        assert cached_record.state == "completed"
        assert cached_record.from_cache
        assert results == saturated.results(cached_record.job_id)
        assert results[0] is not None
        assert saturated.status()["admission"]["cache_served"] == 1
        saturated.close()


class TestDrainRecover:
    def test_drain_stops_admissions_with_503(self, tmp_path):
        service = make_service(tmp_path)
        assert service.drain() is True
        with pytest.raises(AdmissionError) as excinfo:
            service.submit([GRAPH])
        assert excinfo.value.status == 503
        assert service.status()["state"] == "draining"
        service.close()

    def test_restart_resumes_journaled_jobs_bit_identical(self, tmp_path):
        # Journal a job without ever starting the worker — the moral
        # equivalent of kill -9 right after admission.
        service = make_service(tmp_path, started=False)
        record, _, _ = service.submit([GRAPH, SORT], label="restartme")
        job_id = record.job_id
        service.close()

        reborn = make_service(tmp_path)
        assert reborn.status()["recovered"] == 1
        final = wait_done(reborn, job_id)
        assert final.state == "completed"
        assert final.label == "restartme"
        reference = Runner(result_cache=None)
        expected = [
            counters_to_dict(
                reference.run(
                    make_workload(*name.split(":")[:2], int(SCALE)),
                    spec["mode"],
                    use_cache=False,
                )
            )
            for name, spec in (
                (GRAPH["point"], GRAPH),
                (SORT["point"], SORT),
            )
        ]
        assert reborn.results(job_id) == expected
        reborn.drain()
        reborn.close()

    def test_completed_jobs_not_reenqueued_on_restart(self, tmp_path):
        service = make_service(tmp_path)
        record, _, _ = service.submit([GRAPH])
        wait_done(service, record.job_id)
        service.drain()
        service.close()

        reborn = make_service(tmp_path, started=False)
        assert reborn.recover() == 0
        assert reborn.jobs[record.job_id].state == "completed"
        reborn.close()


class TestSerializer:
    def test_job_payload_embeds_shared_run_summary(self, tmp_path):
        service = make_service(tmp_path)
        record, _, _ = service.submit([GRAPH], label="shape")
        wait_done(service, record.job_id)
        payload = service.job_payload(record)
        run = payload["run"]
        assert run["run_id"] == record.job_id
        assert run["status"] == "completed"
        assert run["completed"] == run["total"] == 1
        # The service's run block and `repro runs --json` come from the
        # same serializer, so their key sets must agree.
        wrapped = runs_payload([run])
        assert wrapped["version"] == FORMAT_VERSION
        assert wrapped["runs"] == [run]
        service.drain()
        service.close()

    def test_status_shape(self, tmp_path):
        service = make_service(tmp_path, started=False)
        status = service.status()
        assert status["state"] == "running"
        assert status["queue"]["max"] == service.queue_max
        assert set(status["jobs"]) == {
            "submitted", "running", "completed", "failed", "interrupted"
        }
        assert status["cache"]["hit_rate"] is None
        service.close()


class TestKnobs:
    def test_queue_max_knob(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_QUEUE_MAX", "3")
        service = make_service(tmp_path, started=False)
        assert service.queue_max == 3
        service.close()

    def test_drain_deadline_knob(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_DRAIN_DEADLINE", "1.5")
        service = make_service(tmp_path, started=False)
        assert service.drain_deadline == 1.5
        service.close()
