"""Regression tests for the defects the interprocedural lint surfaced.

``repro lint``'s concurrency-safety rule flagged, in the shipped tree:
blocking journal/checkpoint fsyncs reachable on the asyncio event loop,
and the jobs table / draining flag / journal descriptor touched from
the worker thread and the request path without a consistent lock. The
fixes (executor offload in the HTTP front end, locked accessors in
``SweepService``, a writer lock in ``JobJournal``) are pinned here.
"""

import asyncio
import json
import threading
import time

from repro.harness.resultcache import ResultCache
from repro.harness.runner import Runner
from repro.service.client import ServiceClient
from repro.service.jobqueue import SweepService
from repro.service.journal import JOB_COMPLETED, JOB_SUBMITTED, JobJournal
from repro.service.server import ServiceServer

SCALE = 8
GRAPH = {"point": f"degree-count:KRON:{SCALE}", "mode": "baseline"}


def make_service(tmp_path, **kwargs):
    runner = Runner(result_cache=ResultCache(directory=tmp_path / "cache"))
    return SweepService(
        runner,
        tmp_path / "svc",
        sweep_jobs=1,
        checkpoint_root=tmp_path / "runs",
        **kwargs,
    )


class TestEventLoopResponsiveness:
    def test_healthz_answers_while_a_submit_blocks_on_disk(self, tmp_path):
        """A submission wedged in (simulated) fsync must not stall the
        loop: request handling now runs on the default executor."""
        service = make_service(tmp_path)
        release = threading.Event()
        original = service.submit

        def slow_submit(*args, **kwargs):
            release.wait(timeout=30.0)
            return original(*args, **kwargs)

        service.submit = slow_submit
        holder = {}
        ready = threading.Event()
        stop = threading.Event()

        def run():
            async def main():
                server = await ServiceServer(service, port=0).start()
                holder["port"] = server.port
                ready.set()
                while not stop.is_set():
                    await asyncio.sleep(0.02)
                await server.close()

            asyncio.run(main())

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert ready.wait(timeout=10)
        try:
            client = ServiceClient(port=holder["port"], client_name="reg")
            submitter = threading.Thread(
                target=lambda: client.submit([GRAPH]), daemon=True
            )
            submitter.start()
            time.sleep(0.2)  # let the POST reach the blocked submit
            start = time.monotonic()
            assert client.healthz()
            assert time.monotonic() - start < 2.0
        finally:
            release.set()
            submitter.join(timeout=30)
            stop.set()
            thread.join(timeout=10)
            service.drain()
            service.close()


class TestLockedAccessors:
    def test_completed_dedupe_serves_results_without_deadlock(self, tmp_path):
        """submit()'s dedupe branch used to call results() while holding
        the admission Condition; results() now takes the same underlying
        lock, so the branch must release it first."""
        service = make_service(tmp_path)
        try:
            service.start()
            record, results, accepted = service.submit([GRAPH])
            assert accepted is True and results is None
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                current = service.job(record.job_id)
                if current is not None and not current.pending:
                    break
                time.sleep(0.05)
            assert service.job(record.job_id).state == JOB_COMPLETED

            outcome = {}

            def resubmit():
                outcome["value"] = service.submit([GRAPH])

            worker = threading.Thread(target=resubmit, daemon=True)
            worker.start()
            worker.join(timeout=10.0)
            assert not worker.is_alive(), "dedupe resubmit deadlocked"
            dup_record, dup_results, dup_accepted = outcome["value"]
            assert dup_accepted is False
            assert dup_record.job_id == record.job_id
            assert dup_results == service.results(record.job_id)
        finally:
            service.drain()
            service.close()

    def test_job_accessor_and_status_report_draining_consistently(
        self, tmp_path
    ):
        service = make_service(tmp_path)
        try:
            assert service.job("missing") is None
            assert service.draining is False
            assert service.status()["admission"]["draining"] is False
            service.drain()
            assert service.draining is True
            assert service.status()["admission"]["draining"] is True
            assert service.status()["state"] == "draining"
        finally:
            service.close()


class TestJournalWriterLock:
    def test_concurrent_appends_lose_no_transition(self, tmp_path):
        journal = JobJournal(tmp_path / "jobs.jsonl")
        jobs_per_thread = 25
        threads = 4

        def writer(tag):
            for index in range(jobs_per_thread):
                job_id = f"job-{tag}-{index}"
                journal.append(
                    job_id, JOB_SUBMITTED, points=[{"point": job_id}]
                )
                journal.append(job_id, JOB_COMPLETED)

        workers = [
            threading.Thread(target=writer, args=(tag,)) for tag in range(threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
        journal.close()

        # Every line is intact JSON (no interleaved torn writes) and
        # every job folded to its final state.
        lines = (tmp_path / "jobs.jsonl").read_text().splitlines()
        assert len(lines) == threads * jobs_per_thread * 2
        for line in lines:
            json.loads(line)
        records = journal.replay()
        assert len(records) == threads * jobs_per_thread
        assert all(r.state == JOB_COMPLETED for r in records.values())

    def test_append_after_concurrent_close_reopens_cleanly(self, tmp_path):
        journal = JobJournal(tmp_path / "jobs.jsonl")
        journal.append("a", JOB_SUBMITTED, points=[{"point": "a"}])
        stop = threading.Event()

        def churn():
            while not stop.is_set():
                journal.close()

        closer = threading.Thread(target=churn, daemon=True)
        closer.start()
        try:
            for index in range(50):
                journal.append(
                    f"b{index}", JOB_SUBMITTED, points=[{"point": "b"}]
                )
        finally:
            stop.set()
            closer.join(timeout=10)
            journal.close()
        records = journal.replay()
        assert len(records) == 51
