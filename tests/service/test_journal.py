"""Tests for the crash-safe job journal (append, replay, torn writes)."""

import json

import pytest

from repro.harness.faults import FaultInjector
from repro.harness.telemetry import JsonlTelemetry, read_events
from repro.service.journal import (
    JOB_COMPLETED,
    JOB_RUNNING,
    JOB_SUBMITTED,
    JobJournal,
    JobRecord,
)

POINTS = [{"point": "degree-count:KRON:8", "mode": "baseline", "digest": "d1"}]


@pytest.fixture
def journal(tmp_path):
    j = JobJournal(tmp_path / "jobs.jsonl")
    yield j
    j.close()


class TestAppendReplay:
    def test_roundtrip_folds_transitions(self, journal):
        journal.append("job-a", JOB_SUBMITTED, points=POINTS, label="L")
        journal.append("job-a", JOB_RUNNING)
        journal.append("job-a", JOB_COMPLETED)
        records = journal.replay()
        assert set(records) == {"job-a"}
        record = records["job-a"]
        assert record.state == JOB_COMPLETED
        assert record.label == "L"
        assert record.points == (dict(POINTS[0]),)
        assert not record.pending

    def test_pending_states_survive(self, journal):
        journal.append("job-a", JOB_SUBMITTED, points=POINTS)
        journal.append("job-a", JOB_RUNNING)
        assert journal.replay()["job-a"].pending

    def test_unknown_state_rejected(self, journal):
        with pytest.raises(ValueError, match="unknown job state"):
            journal.append("job-a", "exploded")

    def test_replay_missing_file_is_empty(self, tmp_path):
        assert JobJournal(tmp_path / "nope.jsonl").replay() == {}

    def test_submission_order_preserved(self, journal):
        for job_id in ("b", "a", "c"):
            journal.append(job_id, JOB_SUBMITTED, points=POINTS)
        assert list(journal.replay()) == ["b", "a", "c"]


class TestTornWrites:
    def test_torn_tail_skipped_and_sealed(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        journal = JobJournal(path)
        journal.append("job-a", JOB_SUBMITTED, points=POINTS)
        journal.close()
        # A writer died mid-append: partial line, no trailing newline.
        with open(path, "ab") as handle:
            handle.write(b'{"job_id": "job-b", "sta')
        telemetry = JsonlTelemetry(tmp_path / "t.jsonl")
        reopened = JobJournal(path, telemetry=telemetry)
        assert set(reopened.replay()) == {"job-a"}
        # The next append must seal the torn tail with a newline first.
        reopened.append("job-c", JOB_SUBMITTED, points=POINTS)
        reopened.close()
        records = JobJournal(path).replay()
        assert set(records) == {"job-a", "job-c"}
        telemetry.close()
        events = {e["event"] for e in read_events(tmp_path / "t.jsonl")}
        assert "service_journal_sealed" in events
        assert "service_journal_corrupt" in events

    def test_corrupt_middle_line_skipped(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        journal = JobJournal(path)
        journal.append("job-a", JOB_SUBMITTED, points=POINTS)
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write(json.dumps({"job_id": "job-a", "state": "running"}))
            handle.write("\n")
        records = JobJournal(path).replay()
        assert records["job-a"].state == JOB_RUNNING

    def test_first_sighting_without_points_skipped(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        # A running line whose submitted line was lost: unrecoverable.
        path.write_text(
            json.dumps({"job_id": "ghost", "state": "running"}) + "\n"
        )
        assert JobJournal(path).replay() == {}

    def test_injected_tear_loses_no_transition(self, tmp_path):
        injector = FaultInjector(
            torn=frozenset({"jobs"}), state_dir=str(tmp_path / "state")
        )
        telemetry = JsonlTelemetry(tmp_path / "t.jsonl")
        journal = JobJournal(
            tmp_path / "jobs.jsonl", telemetry=telemetry, injector=injector
        )
        journal.append("job-a", JOB_SUBMITTED, points=POINTS)
        journal.append("job-a", JOB_COMPLETED)
        journal.close()
        # The torn write fired once, yet replay sees both transitions and
        # the sealed garbage line is skipped.
        records = JobJournal(tmp_path / "jobs.jsonl").replay()
        assert records["job-a"].state == JOB_COMPLETED
        telemetry.close()
        events = [e["event"] for e in read_events(tmp_path / "t.jsonl")]
        assert "service_journal_torn" in events

    def test_injected_tear_fires_once(self, tmp_path):
        injector = FaultInjector(
            torn=frozenset({"jobs"}), state_dir=str(tmp_path / "state")
        )
        assert injector.maybe_tear("jobs")
        assert not injector.maybe_tear("jobs")
        assert not injector.maybe_tear("other")


class TestJobRecord:
    def test_as_dict_shape(self):
        record = JobRecord(job_id="j", points=(dict(POINTS[0]),))
        payload = record.as_dict()
        assert payload["job_id"] == "j"
        assert payload["state"] == JOB_SUBMITTED
        assert payload["points"] == [dict(POINTS[0])]
        assert payload["from_cache"] is False
