"""Tests for the HTTP front end: routing table and a live server."""

import asyncio
import json
import threading
import time

import pytest

from repro.harness.resultcache import ResultCache
from repro.harness.runner import Runner
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobqueue import SweepService
from repro.service.server import ENDPOINT_NAME, ServiceServer

SCALE = 8
GRAPH = {"point": f"degree-count:KRON:{SCALE}", "mode": "baseline"}


@pytest.fixture
def service(tmp_path):
    runner = Runner(result_cache=ResultCache(directory=tmp_path / "cache"))
    svc = SweepService(
        runner,
        tmp_path / "svc",
        sweep_jobs=1,
        checkpoint_root=tmp_path / "runs",
    )
    yield svc
    svc.close()


def post(server, path, payload):
    return server.handle_request(
        "POST", path, json.dumps(payload).encode("utf-8")
    )


class TestRouting:
    """The routing table is a pure function — no sockets needed."""

    def test_healthz_always_ok(self, service):
        server = ServiceServer(service)
        assert server.handle_request("GET", "/healthz", b"") == (
            200, {"ok": True}, {}
        )
        service.drain()  # still alive while draining
        assert server.handle_request("GET", "/healthz", b"")[0] == 200

    def test_readyz_tracks_state(self, service):
        server = ServiceServer(service)
        assert server.handle_request("GET", "/readyz", b"")[0] == 200
        service.drain()
        status, payload, headers = server.handle_request("GET", "/readyz", b"")
        assert status == 503
        assert payload["reason"] == "draining"
        assert headers["Retry-After"] == "1"

    def test_status_and_jobs(self, service):
        server = ServiceServer(service)
        status, payload, _ = server.handle_request("GET", "/status", b"")
        assert status == 200 and payload["state"] == "running"
        status, payload, _ = server.handle_request("GET", "/jobs", b"")
        assert status == 200 and payload == {"version": 1, "jobs": []}

    def test_submit_validates_json(self, service):
        server = ServiceServer(service)
        assert server.handle_request("POST", "/jobs", b"{nope")[0] == 400
        assert post(server, "/jobs", {"points": []})[0] == 400
        assert post(server, "/jobs", {"points": [{"point": "x"}]})[0] == 400

    def test_submit_accepts_then_404_then_found(self, service):
        server = ServiceServer(service)
        status, payload, _ = post(server, "/jobs", {"points": [GRAPH]})
        assert status == 202
        assert payload["accepted"] is True
        job_id = payload["job"]["job_id"]
        assert server.handle_request("GET", "/jobs/nope", b"")[0] == 404
        status, payload, _ = server.handle_request(
            "GET", f"/jobs/{job_id}", b""
        )
        assert status == 200
        assert payload["job"]["state"] == "submitted"

    def test_shed_maps_to_429_with_retry_after(self, tmp_path, service):
        service.queue_max = 0
        server = ServiceServer(service)
        status, payload, headers = post(server, "/jobs", {"points": [GRAPH]})
        assert status == 429
        assert "queue full" in payload["error"]
        assert float(headers["Retry-After"]) > 0

    def test_draining_maps_to_503(self, service):
        service.drain()
        server = ServiceServer(service)
        status, payload, headers = post(server, "/jobs", {"points": [GRAPH]})
        assert status == 503
        assert "Retry-After" in headers

    def test_unknown_route_and_method(self, service):
        server = ServiceServer(service)
        assert server.handle_request("GET", "/nope", b"")[0] == 404
        assert server.handle_request("DELETE", "/jobs", b"")[0] == 405
        assert server.handle_request("POST", "/status", b"")[0] == 405


class TestLiveServer:
    """One real asyncio listener, driven by the stdlib client."""

    @pytest.fixture
    def live(self, service):
        service.start()
        holder = {}
        stop = threading.Event()
        ready = threading.Event()

        def run():
            async def main():
                server = await ServiceServer(service, port=0).start()
                holder["port"] = server.port
                ready.set()
                while not stop.is_set():
                    await asyncio.sleep(0.02)
                await server.close()

            asyncio.run(main())

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert ready.wait(timeout=10)
        yield ServiceClient(port=holder["port"], client_name="test")
        stop.set()
        thread.join(timeout=10)
        service.drain()

    def test_submit_wait_results_roundtrip(self, live, service, tmp_path):
        assert live.healthz()
        assert live.readyz()
        payload = live.submit([GRAPH], label="live")
        job_id = payload["job"]["job_id"]
        final = live.wait_job(job_id, timeout=60.0)
        assert final["job"]["state"] == "completed"
        assert final["results"] == service.results(job_id)
        assert live.jobs()["jobs"][0]["job_id"] == job_id
        # endpoint.json was published with the real bound port.
        endpoint = json.loads(
            (tmp_path / "svc" / ENDPOINT_NAME).read_text("utf-8")
        )
        assert endpoint["port"] == live.port
        discovered = ServiceClient.from_state_dir(tmp_path / "svc")
        assert discovered.port == live.port

    def test_status_stays_responsive_while_job_runs(self, live):
        live.submit([GRAPH, {"point": GRAPH["point"], "mode": "cobra"}])
        start = time.monotonic()
        status = live.status()
        assert time.monotonic() - start < 5.0
        assert status["state"] in ("running", "degraded")


class TestClientRetry:
    def test_retry_exhaustion_raises_service_error(self):
        # Nothing listens on this port; every attempt is a refusal.
        client = ServiceClient(port=1, retries=1, backoff=0.01)
        with pytest.raises(ServiceError, match="2 attempts"):
            client.request_with_retry("GET", "/status")

    def test_delay_honors_retry_after_and_cap(self):
        client = ServiceClient(port=1, backoff=0.25, backoff_cap=2.0, seed=7)
        assert client._delay(0, {"Retry-After": "1.5"}) >= 1.5
        assert client._delay(10, {}) <= 2.0
        jittered = {client._delay(2, {}) for _ in range(8)}
        assert len(jittered) > 1  # jitter actually varies
