"""Tests for the COBRA functional machine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CobraConfig, CobraMachine
from repro.pb import bin_updates


@pytest.fixture
def machine():
    return CobraMachine(
        CobraConfig(num_indices=1 << 14, tuple_bytes=8)
    ).bininit()


class TestISA:
    def test_binupdate_before_bininit_rejected(self):
        machine = CobraMachine(CobraConfig(num_indices=64, tuple_bytes=8))
        with pytest.raises(RuntimeError, match="bininit"):
            machine.binupdate(0, None)

    def test_binflush_before_bininit_rejected(self):
        machine = CobraMachine(CobraConfig(num_indices=64, tuple_bytes=8))
        with pytest.raises(RuntimeError, match="bininit"):
            machine.binflush()

    def test_index_bounds_checked(self, machine):
        with pytest.raises(IndexError):
            machine.binupdate(1 << 14, None)

    def test_all_tuples_reach_memory_after_flush(self, machine, rng):
        indices = rng.integers(0, 1 << 14, size=5000)
        machine.binupdate_many(indices.tolist())
        machine.binflush()
        assert machine.memory_bins.total_tuples == 5000
        assert machine.buffered_tuples == 0

    def test_tuples_buffered_before_flush(self, machine):
        machine.binupdate(3, "v")
        assert machine.buffered_tuples == 1
        assert machine.memory_bins.total_tuples == 0


class TestFunctionalEquivalence:
    def test_bins_match_software_pb(self, machine, rng):
        """Each memory bin holds exactly its software-PB bin's updates."""
        indices = rng.integers(0, 1 << 14, size=20_000)
        values = np.arange(20_000)
        machine.binupdate_many(indices.tolist(), values.tolist())
        machine.binflush()
        spec = machine.config.memory_bin_spec
        sw_indices, sw_values, offsets = bin_updates(indices, values, spec)
        for b in range(spec.num_bins):
            software = sorted(
                zip(
                    sw_indices[offsets[b] : offsets[b + 1]].tolist(),
                    sw_values[offsets[b] : offsets[b + 1]].tolist(),
                )
            )
            hardware = sorted(machine.bin_contents(b))
            assert software == hardware

    @given(st.lists(st.integers(0, 1023), min_size=0, max_size=400))
    @settings(max_examples=30, deadline=None)
    def test_no_tuple_lost_or_duplicated(self, raw):
        machine = CobraMachine(
            CobraConfig(num_indices=1024, tuple_bytes=8)
        ).bininit()
        machine.binupdate_many(raw)
        machine.binflush()
        recovered = sorted(
            index
            for bin_tuples in machine.memory_bins.bins
            for index, _value in bin_tuples
        )
        assert recovered == sorted(raw)

    def test_bin_ranges_respected(self, machine, rng):
        indices = rng.integers(0, 1 << 14, size=8000)
        machine.binupdate_many(indices.tolist())
        machine.binflush()
        shift = machine.config.llc.shift
        for bin_id, bin_tuples in enumerate(machine.memory_bins.bins):
            assert all(index >> shift == bin_id for index, _ in bin_tuples)


class TestStats:
    def test_eviction_counts_consistent(self, machine, rng):
        indices = rng.integers(0, 1 << 14, size=30_000)
        machine.binupdate_many(indices.tolist())
        machine.binflush()
        per_line = machine.config.tuples_per_line
        # Each eviction moved exactly one full line of tuples.
        assert machine.stats.l1_evictions <= 30_000 // per_line
        assert machine.stats.llc_evictions == machine.memory_bins.full_lines

    def test_partial_lines_counted_on_flush(self, machine):
        machine.binupdate(0, None)  # a single tuple: one partial line
        machine.binflush()
        assert machine.memory_bins.partial_lines == 1
        assert machine.memory_bins.wasted_bytes == 64 - 8

    def test_context_switch_eviction(self, machine, rng):
        indices = rng.integers(0, 1 << 14, size=5000)
        machine.binupdate_many(indices.tolist())
        evicted = machine.evict_llc_partial()
        assert evicted >= 0
        machine.binflush()
        assert machine.memory_bins.total_tuples == 5000
