"""Tests for hardware C-Buffer lines and arrays."""

from repro.core import CBufferArray, CBufferLine


class TestCBufferLine:
    def test_counter_bits_match_capacity(self):
        assert CBufferLine(8).counter_bits == 3
        assert CBufferLine(16).counter_bits == 4
        assert CBufferLine(4).counter_bits == 2

    def test_insert_returns_none_until_full(self):
        line = CBufferLine(4)
        assert line.insert(1, "a") is None
        assert line.insert(2, "b") is None
        assert line.insert(3, "c") is None
        assert line.occupancy == 3

    def test_fill_returns_tuples_and_wraps_counter(self):
        line = CBufferLine(2)
        line.insert(1, "a")
        full = line.insert(2, "b")
        assert full == [(1, "a"), (2, "b")]
        assert line.offset == 0  # wrapped
        assert line.is_empty

    def test_reusable_after_fill(self):
        line = CBufferLine(2)
        line.insert(1, None)
        line.insert(2, None)
        assert line.insert(3, None) is None
        assert line.occupancy == 1

    def test_drain_partial(self):
        line = CBufferLine(8)
        line.insert(5, "x")
        assert line.drain() == [(5, "x")]
        assert line.is_empty
        assert line.offset == 0


class TestCBufferArray:
    def test_buffer_id_is_shift(self):
        array = CBufferArray(num_buffers=4, bin_range=16, tuples_per_line=8)
        assert array.buffer_id(0) == 0
        assert array.buffer_id(15) == 0
        assert array.buffer_id(16) == 1
        assert array.buffer_id(63) == 3

    def test_insert_until_eviction(self):
        array = CBufferArray(4, 16, tuples_per_line=2)
        assert array.insert(0, "a") is None
        buffer_id, tuples = array.insert(1, "b")
        assert buffer_id == 0
        assert tuples == [(0, "a"), (1, "b")]
        assert array.evictions == 1

    def test_buffers_are_independent(self):
        array = CBufferArray(4, 16, tuples_per_line=2)
        array.insert(0, None)
        array.insert(16, None)
        assert array.occupancy == 2
        assert array.insert(17, None) is not None  # buffer 1 fills

    def test_drain_all_in_id_order(self):
        array = CBufferArray(4, 16, tuples_per_line=8)
        array.insert(40, None)
        array.insert(1, None)
        drained = array.drain_all()
        assert [buffer_id for buffer_id, _ in drained] == [0, 2]
        assert array.occupancy == 0

    def test_occupancies(self):
        array = CBufferArray(4, 16, tuples_per_line=8)
        array.insert(0, None)
        array.insert(0, None)
        array.insert(33, None)
        assert array.occupancies() == {0: 2, 2: 1}

    def test_insert_counter(self):
        array = CBufferArray(4, 16, tuples_per_line=8)
        for i in range(5):
            array.insert(i, None)
        assert array.inserts == 5
