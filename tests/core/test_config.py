"""Tests for the COBRA configuration (bininit derivation)."""

import pytest

from repro.cache import HierarchyConfig
from repro.core import CobraConfig


class TestDefaults:
    def test_default_reservations(self):
        config = CobraConfig(num_indices=1 << 16, tuple_bytes=8)
        assert config.l1_reserved_ways == 7  # all but one
        assert config.l2_reserved_ways == 1  # prefetcher keeps the rest
        assert config.llc_reserved_ways == 15

    def test_tuples_per_line(self):
        assert CobraConfig(num_indices=64, tuple_bytes=8).tuples_per_line == 8
        assert CobraConfig(num_indices=64, tuple_bytes=16).tuples_per_line == 4

    def test_tuple_must_divide_line(self):
        with pytest.raises(ValueError, match="divide"):
            CobraConfig(num_indices=64, tuple_bytes=24)

    def test_reservation_bounds_checked(self):
        with pytest.raises(ValueError, match="reservation"):
            CobraConfig(num_indices=64, tuple_bytes=8, l2_reserved_ways=8)


class TestLevelBinning:
    def test_hierarchy_of_buffer_counts(self):
        config = CobraConfig(num_indices=1 << 18, tuple_bytes=8)
        assert config.l1.num_buffers <= config.l2.num_buffers
        assert config.l2.num_buffers <= config.llc.num_buffers

    def test_bin_ranges_shrink_downward(self):
        config = CobraConfig(num_indices=1 << 18, tuple_bytes=8)
        assert config.l1.bin_range >= config.l2.bin_range >= config.llc.bin_range

    def test_ranges_are_powers_of_two(self):
        config = CobraConfig(num_indices=100_000, tuple_bytes=8)
        for level in (config.l1, config.l2, config.llc):
            assert level.bin_range & (level.bin_range - 1) == 0

    def test_buffers_fit_reserved_capacity(self):
        hierarchy = HierarchyConfig()
        config = CobraConfig(
            hierarchy=hierarchy, num_indices=1 << 18, tuple_bytes=8
        )
        for name in ("l1", "l2", "llc"):
            binning = config.level_binning(name)
            capacity = binning.reserved_ways * hierarchy.sets(name)
            assert binning.num_buffers <= capacity

    def test_ways_used_may_undershoot_reserved(self):
        # Power-of-two rounding can leave reserved ways unused; bininit
        # reports ways_used so software can reclaim them (Section V-A).
        config = CobraConfig(num_indices=1 << 14, tuple_bytes=8)
        assert config.l1.ways_used <= config.l1.reserved_ways

    def test_memory_bins_mirror_llc(self):
        config = CobraConfig(num_indices=1 << 18, tuple_bytes=8)
        assert config.memory_bin_spec.num_bins == config.llc.num_buffers

    def test_validate_monotone_passes_defaults(self):
        CobraConfig(num_indices=1 << 18, tuple_bytes=8).validate_monotone()

    def test_shift_matches_range(self):
        config = CobraConfig(num_indices=1 << 18, tuple_bytes=8)
        assert 1 << config.llc.shift == config.llc.bin_range
