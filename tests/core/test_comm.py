"""Tests for COBRA-COMM (LLC coalescing)."""

import numpy as np
import pytest

from repro.core import CobraCommMachine, CobraConfig, CobraMachine


@pytest.fixture
def config():
    return CobraConfig(num_indices=1 << 14, tuple_bytes=8)


class TestCoalescing:
    def test_add_reduction_preserves_sums(self, config, rng):
        indices = rng.integers(0, 1 << 14, size=20_000)
        machine = CobraCommMachine(config, "add").bininit()
        machine.binupdate_many(indices.tolist(), [1] * 20_000)
        machine.binflush()
        sums = np.zeros(1 << 14, dtype=np.int64)
        for bin_tuples in machine.memory_bins.bins:
            for index, value in bin_tuples:
                sums[index] += value
        expected = np.bincount(indices, minlength=1 << 14)
        assert np.array_equal(sums, expected)

    def test_coalesced_counts_tuples_saved(self, config, rng):
        indices = rng.integers(0, 1 << 14, size=20_000)
        machine = CobraCommMachine(config, "add").bininit()
        machine.binupdate_many(indices.tolist(), [1] * 20_000)
        machine.binflush()
        assert (
            machine.memory_bins.total_tuples + machine.coalesced == 20_000
        )

    def test_skew_increases_coalescing(self, config, rng):
        uniform = rng.integers(0, 1 << 14, size=10_000)
        skewed = rng.integers(0, 64, size=10_000)  # hot range
        results = []
        for indices in (uniform, skewed):
            machine = CobraCommMachine(config, "add").bininit()
            machine.binupdate_many(indices.tolist(), [1] * 10_000)
            machine.binflush()
            results.append(machine.coalesced)
        assert results[1] > results[0]

    def test_or_reduction(self, config):
        machine = CobraCommMachine(config, "or").bininit()
        machine.binupdate(5, 1)
        machine.binupdate(5, 4)
        machine.binflush()
        (bin_tuples,) = [b for b in machine.memory_bins.bins if b]
        assert bin_tuples == [(5, 5)]

    def test_traffic_reduced_vs_plain_cobra(self, config, rng):
        indices = rng.integers(0, 256, size=20_000)  # heavy reuse
        plain = CobraMachine(config).bininit()
        plain.binupdate_many(indices.tolist(), [1] * 20_000)
        plain.binflush()
        comm = CobraCommMachine(config, "add").bininit()
        comm.binupdate_many(indices.tolist(), [1] * 20_000)
        comm.binflush()
        assert (
            comm.memory_bins.lines_written < plain.memory_bins.lines_written
        )


class TestNonCommutativeHazard:
    def test_coalescing_breaks_store_semantics(self, config):
        """The Section III-B hazard: merging reordered non-commutative
        updates loses information (here: update multiplicity)."""
        machine = CobraCommMachine(config, lambda old, new: new).bininit()
        machine.binupdate(7, "first")
        machine.binupdate(7, "second")
        machine.binflush()
        (bin_tuples,) = [b for b in machine.memory_bins.bins if b]
        # Two updates collapsed into one: a placement kernel would skip an
        # output slot — exactly why PHI/COBRA-COMM are inapplicable.
        assert len(bin_tuples) == 1
