"""Tests for the context-switch bandwidth-waste model (Figure 13c)."""

import numpy as np
import pytest

from repro.core import CobraConfig, simulate_context_switches


@pytest.fixture
def config():
    return CobraConfig(num_indices=1 << 14, tuple_bytes=8)


@pytest.fixture(scope="module")
def trace():
    return np.random.default_rng(3).integers(0, 1 << 14, size=40_000)


class TestContextSwitches:
    def test_no_tuples_lost(self, config, trace):
        result = simulate_context_switches(config, trace, 5_000)
        assert result.useful_bytes == len(trace) * 8

    def test_switch_count(self, config, trace):
        result = simulate_context_switches(config, trace, 10_000)
        assert result.switches == 3  # 40k tuples, a switch every 10k

    def test_larger_quantum_wastes_less(self, config, trace):
        frequent = simulate_context_switches(config, trace, 2_000)
        rare = simulate_context_switches(config, trace, 20_000)
        assert rare.waste_fraction < frequent.waste_fraction

    def test_quantum_beyond_trace_means_no_switches(self, config, trace):
        result = simulate_context_switches(config, trace, len(trace) + 1)
        assert result.switches == 0
        # Only binflush residue remains as waste.
        flush_only = result.waste_fraction
        assert flush_only < 0.5

    def test_waste_fraction_bounded(self, config, trace):
        result = simulate_context_switches(config, trace, 1_000)
        assert 0.0 <= result.waste_fraction < 1.0

    def test_quantum_validated(self, config, trace):
        with pytest.raises(ValueError):
            simulate_context_switches(config, trace, 0)
