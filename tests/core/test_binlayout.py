"""Tests for the Figure 9 sequential bin layout."""

import numpy as np
import pytest

from repro.core import CobraConfig, CobraMachine
from repro.core.binlayout import SequentialBins
from repro.pb import bin_counts as compute_bin_counts
from repro.pb import bin_updates


class TestSequentialBins:
    def test_offsets_are_prefix_sums(self):
        bins = SequentialBins(np.array([2, 0, 3]))
        assert np.array_equal(bins.offsets, [0, 2, 2, 5])
        assert bins.num_bins == 3

    def test_write_advances_cursor(self):
        bins = SequentialBins(np.array([4, 4]))
        bins.write_line(0, [(0, "a"), (1, "b")])
        assert bins.cursors[0] == 2
        assert bins.remaining(0) == 2
        indices, values = bins.bin_contents(0)
        assert indices.tolist() == [0, 1]
        assert list(values) == ["a", "b"]

    def test_overflow_detected(self):
        bins = SequentialBins(np.array([1]))
        with pytest.raises(OverflowError, match="overflows"):
            bins.write_line(0, [(0, None), (1, None)])

    def test_line_accounting(self):
        bins = SequentialBins(np.array([10]), tuple_bytes=8, line_bytes=64)
        bins.write_line(0, [(i, None) for i in range(8)])  # exactly one line
        bins.write_line(0, [(8, None), (9, None)])  # partial
        assert bins.full_lines == 1
        assert bins.partial_lines == 1
        assert bins.wasted_bytes == 64 - 16

    def test_completeness(self):
        bins = SequentialBins(np.array([1, 2]))
        assert not bins.is_complete()
        bins.write_line(0, [(0, None)])
        bins.write_line(1, [(1, None), (2, None)])
        assert bins.is_complete()

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            SequentialBins(np.array([1, -1]))

    def test_empty_write_is_noop(self):
        bins = SequentialBins(np.array([1]))
        bins.write_line(0, [])
        assert bins.total_tuples == 0


class TestCobraWithSequentialLayout:
    def test_end_to_end_matches_software_binning(self, rng):
        """The full Figure 9 path: Init counts -> tag cursors -> layout
        identical (as per-bin multisets) to software PB's bin arrays."""
        config = CobraConfig(num_indices=1 << 12, tuple_bytes=8)
        spec = config.memory_bin_spec
        indices = rng.integers(0, 1 << 12, size=10_000)
        values = np.arange(10_000)
        counts = compute_bin_counts(indices, spec)

        machine = CobraMachine(config).bininit(bin_counts=counts)
        machine.binupdate_many(indices.tolist(), values.tolist())
        machine.binflush()

        assert machine.memory_bins.is_complete()
        sw_idx, sw_val, sw_off = bin_updates(indices, values, spec)
        for b in range(spec.num_bins):
            hw_idx, hw_val = machine.memory_bins.bin_contents(b)
            software = sorted(
                zip(
                    sw_idx[sw_off[b] : sw_off[b + 1]].tolist(),
                    sw_val[sw_off[b] : sw_off[b + 1]].tolist(),
                )
            )
            assert sorted(zip(hw_idx.tolist(), list(hw_val))) == software

    def test_wrong_count_length_rejected(self):
        config = CobraConfig(num_indices=1 << 12, tuple_bytes=8)
        with pytest.raises(ValueError, match="one entry per LLC"):
            CobraMachine(config).bininit(bin_counts=np.array([1, 2, 3]))

    def test_undersized_counts_overflow(self, rng):
        config = CobraConfig(num_indices=1 << 12, tuple_bytes=8)
        spec = config.memory_bin_spec
        indices = rng.integers(0, 1 << 12, size=5_000)
        counts = compute_bin_counts(indices, spec)
        counts[int(spec.bins_of(indices[:1])[0])] = 0  # sabotage one bin
        machine = CobraMachine(config).bininit(bin_counts=counts)
        with pytest.raises(OverflowError):
            machine.binupdate_many(indices.tolist())
            machine.binflush()
