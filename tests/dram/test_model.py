"""Tests for the banked DRAM row-buffer model."""

import numpy as np
import pytest

from repro.dram import DramConfig, DramModel


@pytest.fixture
def model():
    return DramModel()


class TestConfig:
    def test_default_latencies_bracket_table_ii(self):
        config = DramConfig()
        # Table II's 80 ns ≈ 213 cycles sits at the row-miss path.
        assert 190 <= config.row_miss_latency <= 230
        assert config.row_hit_latency < config.row_miss_latency

    def test_lines_per_row(self):
        assert DramConfig().lines_per_row == 128

    def test_geometry_validated(self):
        with pytest.raises(ValueError):
            DramConfig(row_bytes=100)
        with pytest.raises(ValueError):
            DramConfig(num_banks=0)


class TestRowBuffer:
    def test_first_access_misses(self, model):
        assert model.access(0) == model.config.row_miss_latency

    def test_same_row_hits(self, model):
        model.access(0)
        assert model.access(1) == model.config.row_hit_latency

    def test_row_conflict_in_same_bank(self, model):
        lines_per_row = model.config.lines_per_row
        banks = model.config.num_banks
        model.access(0)  # row 0, bank 0
        conflicting = lines_per_row * banks  # row `banks`, also bank 0
        assert model.access(conflicting) == model.config.row_miss_latency
        assert model.access(0) == model.config.row_miss_latency  # reopened

    def test_different_banks_independent(self, model):
        lines_per_row = model.config.lines_per_row
        model.access(0)  # bank 0
        model.access(lines_per_row)  # row 1 -> bank 1
        assert model.access(1) == model.config.row_hit_latency

    def test_reset_closes_rows(self, model):
        model.access(0)
        model.reset()
        assert model.access(0) == model.config.row_miss_latency


class TestStreams:
    def test_sequential_stream_mostly_hits(self, model):
        stats = model.run(range(20_000))
        # One miss per row opened.
        assert stats.row_hit_rate > 0.99
        assert stats.average_latency < model.config.row_hit_latency * 1.05

    def test_random_stream_mostly_misses(self, model, rng):
        lines = rng.integers(0, 1 << 22, size=20_000).tolist()
        stats = model.run(lines)
        assert stats.row_hit_rate < 0.05
        assert stats.average_latency > model.config.row_miss_latency * 0.95

    def test_bin_major_stream_between_extremes(self, model, rng):
        # Bin-major replay: sequential-ish within each bin's data range.
        raw = np.sort(rng.integers(0, 1 << 14, size=20_000))
        stats = model.run(raw.tolist())
        assert stats.row_hit_rate > 0.9

    def test_stats_accumulate(self, model):
        stats = model.run([0, 1, 2])
        assert stats.accesses == 3
        assert stats.total_cycles == (
            model.config.row_miss_latency + 2 * model.config.row_hit_latency
        )
