"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import EdgeList, build_csr, rmat, uniform_random


@pytest.fixture(scope="session")
def small_edges():
    """A small power-law edge list (4k vertices, 32k edges)."""
    return rmat(1 << 12, 1 << 15, seed=42)


@pytest.fixture(scope="session")
def small_csr(small_edges):
    """CSR of :func:`small_edges`."""
    return build_csr(small_edges)


@pytest.fixture(scope="session")
def uniform_edges():
    """A small uniform-random edge list."""
    return uniform_random(1 << 12, 1 << 15, seed=43)


@pytest.fixture
def tiny_edges():
    """A hand-checkable edge list."""
    return EdgeList(
        np.array([0, 2, 1, 2, 0, 3]),
        np.array([1, 3, 0, 0, 2, 3]),
        num_vertices=4,
    )


@pytest.fixture(scope="session")
def rng():
    """Session RNG for tests that need arbitrary-but-stable data."""
    return np.random.default_rng(0xC0FFEE)
