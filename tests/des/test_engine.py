"""Tests for the DES kernel."""

import pytest

from repro.des import Queue, Simulator, Timeout


class TestTimeout:
    def test_advances_time(self):
        sim = Simulator()
        log = []

        def proc():
            yield Timeout(5)
            log.append(sim.now)
            yield Timeout(2.5)
            log.append(sim.now)

        sim.process(proc())
        sim.run()
        assert log == [5.0, 7.5]

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Timeout(-1)

    def test_processes_interleave_by_time(self):
        sim = Simulator()
        log = []

        def proc(name, delay):
            yield Timeout(delay)
            log.append(name)

        sim.process(proc("slow", 10))
        sim.process(proc("fast", 1))
        sim.run()
        assert log == ["fast", "slow"]


class TestQueue:
    def test_put_then_get(self):
        sim = Simulator()
        queue = Queue()
        got = []

        def producer():
            yield queue.put("a")
            yield queue.put("b")

        def consumer():
            got.append((yield queue.get()))
            got.append((yield queue.get()))

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert got == ["a", "b"]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        queue = Queue()
        times = []

        def consumer():
            yield queue.get()
            times.append(sim.now)

        def producer():
            yield Timeout(7)
            yield queue.put("x")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert times == [7.0]

    def test_put_blocks_when_full(self):
        sim = Simulator()
        queue = Queue(capacity=1)
        times = []

        def producer():
            yield queue.put("a")
            yield queue.put("b")  # blocks until consumer drains
            times.append(sim.now)

        def consumer():
            yield Timeout(9)
            yield queue.get()

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert times == [9.0]

    def test_fifo_order_preserved(self):
        sim = Simulator()
        queue = Queue(capacity=3)
        got = []

        def producer():
            for item in range(6):
                yield queue.put(item)

        def consumer():
            for _ in range(6):
                got.append((yield queue.get()))
                yield Timeout(1)

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert got == list(range(6))

    def test_max_occupancy_tracked(self):
        sim = Simulator()
        queue = Queue(capacity=4)

        def producer():
            for item in range(3):
                yield queue.put(item)

        sim.process(producer())
        sim.run()
        assert queue.max_occupancy == 3

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Queue(capacity=0)


class TestSimulator:
    def test_run_returns_final_time(self):
        sim = Simulator()

        def proc():
            yield Timeout(42)

        sim.process(proc())
        assert sim.run() == 42.0

    def test_run_until_bound(self):
        sim = Simulator()
        log = []

        def proc():
            for _ in range(10):
                yield Timeout(1)
                log.append(sim.now)

        sim.process(proc())
        sim.run(until=3)
        assert log == [1.0, 2.0, 3.0]

    def test_unknown_effect_raises(self):
        sim = Simulator()

        def proc():
            yield "nonsense"

        sim.process(proc())
        with pytest.raises(TypeError):
            sim.run()

    def test_blocked_getter_does_not_hang(self):
        sim = Simulator()
        queue = Queue()

        def consumer():
            yield queue.get()  # never satisfied

        sim.process(consumer())
        assert sim.run() == 0.0  # heap drains, run returns
