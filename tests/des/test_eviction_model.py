"""Tests for the COBRA eviction-buffer DES model."""

import numpy as np
import pytest

from repro.des import (
    EvictionBufferModel,
    EvictionModelConfig,
    littles_law_queue_estimate,
)


def config(**overrides):
    defaults = dict(
        num_indices=4096,
        l1_buffers=16,
        l2_buffers=64,
        llc_buffers=512,
        tuples_per_line=8,
    )
    defaults.update(overrides)
    return EvictionModelConfig(**defaults)


@pytest.fixture(scope="module")
def trace():
    return np.random.default_rng(5).integers(0, 4096, size=20_000)


class TestConfig:
    def test_bin_range_ceil(self):
        cfg = config()
        assert cfg.bin_range(cfg.l1_buffers) == 256

    def test_buffer_monotonicity_enforced(self):
        with pytest.raises(ValueError, match="grow"):
            config(l1_buffers=128, l2_buffers=64)

    def test_positive_fields_enforced(self):
        with pytest.raises(ValueError):
            config(l1_evict_queue=0)


class TestModel:
    def test_all_tuples_accounted(self, trace):
        result = EvictionBufferModel(config()).run(trace)
        assert result.tuples == len(trace)
        # Every full line at L1 carried tuples_per_line tuples.
        assert result.evictions["l1"] <= len(trace) // 8

    def test_trace_index_bound_checked(self):
        with pytest.raises(ValueError, match="beyond"):
            EvictionBufferModel(config()).run(np.array([4096]))

    def test_larger_queue_reduces_stalls(self, trace):
        tiny = EvictionBufferModel(config(l1_evict_queue=1)).run(trace)
        large = EvictionBufferModel(config(l1_evict_queue=32)).run(trace)
        assert large.stall_fraction <= tiny.stall_fraction

    def test_32_entry_queue_hides_evictions(self, trace):
        result = EvictionBufferModel(config(l1_evict_queue=32)).run(trace)
        assert result.stall_fraction < 0.01

    def test_slow_engine_forces_stalls(self, trace):
        # An engine slower than the core must back up the FIFO.
        cfg = config(
            l1_evict_queue=1,
            core_cycles_per_tuple=1.0,
            engine_cycles_per_tuple=4.0,
        )
        result = EvictionBufferModel(cfg).run(trace)
        assert result.stall_fraction > 0.2

    def test_evictions_cascade_down(self, trace):
        result = EvictionBufferModel(config()).run(trace)
        assert result.evictions["l1"] > 0
        assert result.evictions["l2"] > 0
        assert result.evictions["llc"] > 0
        # Tuples only move downward, so line counts shrink slightly due to
        # residuals left buffered at each level.
        assert result.evictions["l2"] <= result.evictions["l1"]

    def test_empty_trace(self):
        result = EvictionBufferModel(config()).run(np.array([], dtype=np.int64))
        assert result.total_cycles == 0
        assert result.stall_fraction == 0.0

    def test_max_occupancy_within_capacity(self, trace):
        cfg = config(l1_evict_queue=4)
        result = EvictionBufferModel(cfg).run(trace)
        assert result.max_queue_occupancy["l1_evict"] <= 4


class TestLittlesLaw:
    def test_estimate_below_des_requirement(self):
        # The paper's point: steady-state Little's-law underestimates what
        # bursts require, but is in the right order of magnitude.
        estimate = littles_law_queue_estimate(config())
        assert 0 < estimate < 4
