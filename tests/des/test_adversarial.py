"""Adversarial traces for the eviction-buffer DES (burst stress tests)."""

import numpy as np

from repro.des import EvictionBufferModel, EvictionModelConfig


def config(**overrides):
    defaults = dict(
        num_indices=4096,
        l1_buffers=16,
        l2_buffers=64,
        llc_buffers=512,
        tuples_per_line=8,
        core_cycles_per_tuple=1.0,
        engine_cycles_per_tuple=1.0,
    )
    defaults.update(overrides)
    return EvictionModelConfig(**defaults)


def round_robin_burst_trace(cfg, rounds):
    """Fill all L1 C-Buffers in lockstep: every buffer evicts in the same
    8-tuple window — the worst burst the structure allows."""
    bin_range = cfg.bin_range(cfg.l1_buffers)
    one_round = []
    for slot in range(cfg.tuples_per_line):
        for buffer_id in range(cfg.l1_buffers):
            one_round.append(buffer_id * bin_range)
    return np.array(one_round * rounds, dtype=np.int64)


class TestAdversarialTraces:
    def test_single_hot_buffer_never_stalls(self):
        cfg = config(l1_evict_queue=1)
        trace = np.zeros(20_000, dtype=np.int64)
        result = EvictionBufferModel(cfg).run(trace)
        # Fills arrive every 8 cycles, service takes 8: critically loaded
        # but never more than one line queued.
        assert result.max_queue_occupancy["l1_evict"] <= 1
        assert result.stall_fraction < 0.05

    def test_lockstep_bursts_overflow_small_queues(self):
        cfg = config(l1_evict_queue=2)
        trace = round_robin_burst_trace(cfg, rounds=100)
        result = EvictionBufferModel(cfg).run(trace)
        assert result.stall_fraction > 0.01

    def test_large_queue_absorbs_lockstep_bursts(self):
        trace = round_robin_burst_trace(config(), rounds=100)
        small = EvictionBufferModel(config(l1_evict_queue=2)).run(trace)
        large = EvictionBufferModel(config(l1_evict_queue=64)).run(trace)
        assert large.stall_fraction < small.stall_fraction
        assert large.core_stall_cycles <= small.core_stall_cycles

    def test_total_time_bounded_below_by_work(self):
        cfg = config()
        trace = round_robin_burst_trace(cfg, rounds=50)
        result = EvictionBufferModel(cfg).run(trace)
        assert result.total_cycles >= len(trace) * cfg.core_cycles_per_tuple

    def test_tuples_conserved_under_pressure(self):
        cfg = config(l1_evict_queue=1, engine_cycles_per_tuple=3.0)
        trace = round_robin_burst_trace(cfg, rounds=30)
        result = EvictionBufferModel(cfg).run(trace)
        moved_out_of_l1 = result.evictions["l1"] * cfg.tuples_per_line
        assert moved_out_of_l1 <= result.tuples
        # Lockstep rounds fill L1 buffers exactly: everything evicts.
        assert moved_out_of_l1 == result.tuples


class TestCachePathological:
    def test_single_set_thrash(self):
        """All lines in one set: associativity bounds the hit rate."""
        from repro.cache import FastHierarchy, HierarchyConfig

        cfg = HierarchyConfig(prefetch=False)
        sets = cfg.sets("l1")
        conflicting = [sets * i for i in range(9)]  # 9 lines, 8-way set
        fast = FastHierarchy(cfg)
        for _ in range(50):
            for line in conflicting:
                fast.access(line)
        # 9 lines can never all reside in an 8-way set; misses continue
        # forever at the L1 (they hit below).
        assert fast.misses[0] > 50

    def test_cyclic_scan_defeats_plru_but_not_capacity(self):
        from repro.cache import FastHierarchy, HierarchyConfig

        cfg = HierarchyConfig(prefetch=False)
        capacity = cfg.lines("l1")
        scan = list(range(capacity * 2)) * 20
        fast = FastHierarchy(cfg)
        counts = fast.run_trace(scan, False)
        # A scan of twice the L1 thrashes it completely...
        assert counts.l1 < len(scan) * 0.1
        # ...but fits comfortably in the L2.
        assert counts.l2 > len(scan) * 0.8
