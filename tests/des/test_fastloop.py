"""Bit-identity of the flattened DES loop with the generator engine.

:meth:`EvictionBufferModel.run` executes the flat event loop of
:mod:`repro.des.fastloop` (and, through the kernel-backend tiers, its C
twin); :meth:`EvictionBufferModel.run_reference` retains the original
generator-engine formulation as the oracle. Figure 13a's stall fractions
are ratios of accumulated floats, so these tests demand *bit* identity —
``float.hex`` equality of every cycle counter, not approximate equality —
plus exact eviction counts and max queue occupancies (occupancy maxima
are sensitive to event ordering at timestamp ties, which makes them the
sharpest probe of schedule fidelity).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import kernels as kernel_backends
from repro.des import fastloop
from repro.des.eviction_model import EvictionBufferModel, EvictionModelConfig

BACKENDS = ["numpy"]
if kernel_backends.cnative_available():
    BACKENDS.append("cnative")


def assert_bit_identical(cfg, trace):
    model = EvictionBufferModel(cfg)
    ref = model.run_reference(trace)
    trace = np.asarray(trace, dtype=np.int64)
    for backend in BACKENDS:
        total, stall, evictions, max_occ = fastloop.simulate_eviction_pipeline(
            trace, cfg, backend=backend
        )
        label = f"backend={backend}"
        assert total.hex() == ref.total_cycles.hex(), label
        assert stall.hex() == ref.core_stall_cycles.hex(), label
        assert evictions == [
            ref.evictions["l1"], ref.evictions["l2"], ref.evictions["llc"],
        ], label
        assert max_occ == [
            ref.max_queue_occupancy["l1_evict"],
            ref.max_queue_occupancy["l2_evict"],
            ref.max_queue_occupancy["mem"],
        ], label
    fast = model.run(trace)
    assert fast.total_cycles.hex() == ref.total_cycles.hex()
    assert fast.core_stall_cycles.hex() == ref.core_stall_cycles.hex()
    assert fast.evictions == ref.evictions
    assert fast.max_queue_occupancy == ref.max_queue_occupancy
    assert fast.tuples == ref.tuples
    assert fast.stall_fraction == ref.stall_fraction
    return ref


def test_uniform_trace():
    rng = np.random.default_rng(11)
    cfg = EvictionModelConfig(num_indices=2048)
    assert_bit_identical(cfg, rng.integers(0, 2048, size=60_000))


def test_bursty_trace_stalls():
    """Runs of same-bin tuples force back-to-back evictions; with a short
    L1 FIFO the core must actually stall (the Figure 13a effect)."""
    rng = np.random.default_rng(12)
    chunks = []
    while sum(len(c) for c in chunks) < 40_000:
        base = int(rng.integers(0, 512))
        chunks.append([base] * int(rng.integers(1, 24)))
    trace = np.concatenate(chunks)[:40_000].astype(np.int64)
    cfg = EvictionModelConfig(
        num_indices=512, l1_evict_queue=1, l2_evict_queue=1, mem_queue=1,
        mem_cycles_per_line=32.0, core_cycles_per_tuple=0.5,
    )
    ref = assert_bit_identical(cfg, trace)
    assert ref.core_stall_cycles > 0  # the scenario must exercise stalls


def test_backpressure_fills_queues():
    """A slow memory writer propagates backpressure through both FIFOs."""
    cfg = EvictionModelConfig(
        num_indices=64, l1_buffers=2, l2_buffers=4, llc_buffers=8,
        l1_evict_queue=2, l2_evict_queue=2, mem_queue=2,
        mem_cycles_per_line=128.0,
    )
    trace = np.tile(np.arange(64), 400)
    ref = assert_bit_identical(cfg, trace)
    assert ref.max_queue_occupancy["mem"] == 2  # saturated


def test_odd_geometry():
    """Non-power-of-two buffers, line size, and rates."""
    rng = np.random.default_rng(13)
    cfg = EvictionModelConfig(
        num_indices=999, l1_buffers=7, l2_buffers=31, llc_buffers=101,
        tuples_per_line=5, l1_evict_queue=2, l2_evict_queue=3, mem_queue=2,
        core_cycles_per_tuple=1.25, engine_cycles_per_tuple=0.75,
        mem_cycles_per_line=3.5,
    )
    assert_bit_identical(cfg, rng.integers(0, 999, size=20_000))


def test_degenerate_traces():
    cfg = EvictionModelConfig(
        num_indices=16, l1_buffers=2, l2_buffers=2, llc_buffers=2
    )
    assert_bit_identical(cfg, np.array([], dtype=np.int64))
    assert_bit_identical(cfg, np.array([3], dtype=np.int64))
    assert_bit_identical(cfg, np.array([3] * 8, dtype=np.int64))
    assert_bit_identical(cfg, np.array([3] * 7, dtype=np.int64))  # no evict


@given(
    trace=st.lists(st.integers(0, 63), min_size=0, max_size=600),
    l1_fifo=st.integers(1, 4),
    per_line=st.integers(1, 9),
)
@settings(max_examples=50, deadline=None)
def test_schedule_property(trace, l1_fifo, per_line):
    cfg = EvictionModelConfig(
        num_indices=64, l1_buffers=4, l2_buffers=8, llc_buffers=16,
        tuples_per_line=per_line, l1_evict_queue=l1_fifo,
        l2_evict_queue=2, mem_queue=2,
    )
    assert_bit_identical(cfg, np.asarray(trace, dtype=np.int64))


def test_oracle_marker():
    """The backend-pairing lint rule keys off this module attribute."""
    assert fastloop.SCALAR_ORACLE == "Simulator"


def test_numpy_backend_forces_python_loop(monkeypatch):
    """REPRO_KERNEL_BACKEND=numpy must bypass the C loop (the no-compiler
    CI leg relies on this) and still be bit-identical."""
    monkeypatch.setenv(kernel_backends.KERNEL_BACKEND_KNOB, "numpy")
    rng = np.random.default_rng(14)
    cfg = EvictionModelConfig(num_indices=256)
    trace = rng.integers(0, 256, size=5_000)
    model = EvictionBufferModel(cfg)
    ref = model.run_reference(trace)
    fast = model.run(trace)
    assert fast.total_cycles.hex() == ref.total_cycles.hex()
    assert fast.evictions == ref.evictions


def test_run_validates_indices():
    cfg = EvictionModelConfig(num_indices=8)
    model = EvictionBufferModel(cfg)
    with pytest.raises(ValueError, match="beyond num_indices"):
        model.run(np.array([9], dtype=np.int64))
    with pytest.raises(ValueError, match="beyond num_indices"):
        model.run_reference(np.array([9], dtype=np.int64))
