"""Tests for the runner's trace construction and phase simulation."""

import numpy as np
import pytest

from repro.harness import Runner
from repro.workloads.base import PhaseSpec, RegionSpec, Segment


@pytest.fixture
def runner():
    return Runner(max_sim_events=10_000)


def make_phase(**overrides):
    region = RegionSpec("data", 4, 1024)
    defaults = dict(
        name="main",
        instructions=1000,
        segments=[Segment(region, np.arange(100), True)],
        streaming_bytes=0,
    )
    defaults.update(overrides)
    return PhaseSpec(**defaults)


class TestBuildTrace:
    def test_single_segment(self, runner):
        phase = make_phase()
        lines, writes, events = runner._build_trace(phase, 64)
        assert events == 100
        assert all(writes)
        # 4-byte elements: 16 consecutive indices share a line.
        assert lines[0] == lines[15]
        assert lines[16] == lines[0] + 1

    def test_two_segments_interleave_elementwise(self, runner):
        a = RegionSpec("a", 64, 64)
        b = RegionSpec("b", 64, 64)
        phase = make_phase(
            segments=[
                Segment(a, np.array([0, 1, 2]), True),
                Segment(b, np.array([3, 4, 5]), False),
            ]
        )
        lines, writes, events = runner._build_trace(phase, 64)
        assert events == 6
        assert writes.tolist() == [True, False] * 3
        # a[0], b[3], a[1], b[4], ...
        base_a = lines[0]
        base_b = lines[1]
        assert lines[2] == base_a + 1
        assert lines[3] == base_b + 1

    def test_sampling_budget_split_across_segments(self):
        runner = Runner(max_sim_events=10)
        region = RegionSpec("r", 64, 1000)
        phase = make_phase(
            segments=[
                Segment(region, np.arange(100), True),
                Segment(region, np.arange(100), True),
            ]
        )
        _lines, _writes, events = runner._build_trace(phase, 64)
        assert events == 10  # 5 per segment, interleaved

    def test_disjoint_regions_never_alias(self, runner):
        a = RegionSpec("a", 4, 512)
        b = RegionSpec("b", 4, 512)
        phase = make_phase(
            segments=[
                Segment(a, np.arange(512), True),
                Segment(b, np.arange(512), True),
            ]
        )
        lines, _writes, _events = runner._build_trace(phase, 64)
        a_lines = set(lines[0::2])
        b_lines = set(lines[1::2])
        assert not (a_lines & b_lines)


class TestSimulatePhase:
    def test_phase_with_no_segments_has_no_irregular_traffic(self, runner):
        phase = make_phase(segments=[], streaming_bytes=64_000)
        counters = runner._simulate_phase(None, phase, None)
        assert counters.irregular_service.total == 0
        assert counters.traffic.reads == 1000

    def test_sampling_scales_counts(self):
        capped = Runner(max_sim_events=1_000)
        region = RegionSpec("big", 4, 1 << 18)
        rng = np.random.default_rng(0)
        indices = rng.integers(0, 1 << 18, size=50_000)
        phase = make_phase(segments=[Segment(region, indices, True)])
        counters = capped._simulate_phase(None, phase, None)
        total = counters.irregular_service.total
        assert total == pytest.approx(50_000, rel=0.02)

    def test_nt_writes_counted_in_traffic(self, runner):
        phase = make_phase(nt_write_lines=123)
        counters = runner._simulate_phase(None, phase, None)
        assert counters.traffic.writes >= 123

    def test_dispatch_overhead_charged_per_bin(self, runner):
        without = runner._simulate_phase(None, make_phase(), None)
        with_bins = runner._simulate_phase(
            None, make_phase(num_bins=1000), None
        )
        delta = with_bins.cycles - without.cycles
        expected = 1000 * runner.machine.dispatch_cycles_per_bin
        assert delta == pytest.approx(expected, rel=0.01)

    def test_l2_starved_reservation_slows_streaming(self, runner):
        fast = runner._simulate_phase(
            None, make_phase(segments=[], streaming_bytes=1 << 22), None
        )
        slow = runner._simulate_phase(
            None,
            make_phase(
                segments=[],
                streaming_bytes=1 << 22,
                reserved_ways=(7, 7, 15),
            ),
            None,
        )
        assert slow.cycles > fast.cycles

    def test_shared_llc_phase_charged_remote_latency(self):
        runner = Runner(max_sim_events=50_000)
        region = RegionSpec("seg", 4, 1 << 15)  # fits the LLC
        rng = np.random.default_rng(1)
        indices = rng.integers(0, 1 << 15, size=30_000)
        local = make_phase(segments=[Segment(region, indices, False)])
        remote = make_phase(
            segments=[Segment(region, indices, False)], shared_llc=True
        )
        local_counters = runner._simulate_phase(None, local, None)
        remote_counters = runner._simulate_phase(None, remote, None)
        assert remote_counters.cycles > local_counters.cycles
