"""Tests for the ``repro.api`` facade: structured results and modes."""

import dataclasses
import json

import pytest

from repro.api import (
    PROVENANCE_DISK,
    PROVENANCE_JOURNAL,
    PROVENANCE_SIMULATED,
    ExecutionMode,
    PhaseResult,
    RunResult,
    Runner,
    make_workload,
)
from repro.cpu.counters import PhaseCounters, RunCounters
from repro.harness import modes

SCALE = 15


@pytest.fixture(scope="module")
def runner():
    return Runner(max_sim_events=20_000)


@pytest.fixture(scope="module")
def workload():
    return make_workload("degree-count", "KRON", scale=SCALE)


@pytest.fixture(scope="module")
def result(runner, workload):
    return runner.run(workload, modes.PB_SW, use_cache=False)


class TestExecutionMode:
    def test_members_are_their_strings(self):
        assert ExecutionMode.COBRA == "cobra"
        assert str(ExecutionMode.COBRA) == "cobra"
        assert json.dumps(ExecutionMode.COBRA) == '"cobra"'

    def test_hashes_by_value(self):
        assert hash(ExecutionMode.PHI) == hash("phi")
        assert "phi" in {ExecutionMode.PHI}
        assert ExecutionMode.PHI in {"phi"}

    def test_coerce_accepts_strings_and_members(self):
        assert ExecutionMode.coerce("cobra") is ExecutionMode.COBRA
        assert ExecutionMode.coerce(ExecutionMode.COBRA) is ExecutionMode.COBRA

    def test_coerce_rejects_unknown_with_listing(self):
        with pytest.raises(ValueError, match="unknown mode") as excinfo:
            ExecutionMode.coerce("warp-speed")
        message = str(excinfo.value)
        for mode in modes.ALL_MODES:
            assert str(mode) in message

    def test_module_constants_are_members(self):
        assert modes.BASELINE is ExecutionMode.BASELINE
        assert all(isinstance(m, ExecutionMode) for m in modes.ALL_MODES)

    def test_runner_rejects_unknown_mode(self, runner, workload):
        with pytest.raises(ValueError, match="unknown mode"):
            runner.run(workload, "definitely-not-a-mode")


class TestPhaseResult:
    def test_frozen(self, result):
        with pytest.raises(dataclasses.FrozenInstanceError):
            result.phases[0].cycles = 0.0

    def test_engine_tag_present_on_traced_phases(self, result):
        traced = [p for p in result.phases if p.engine is not None]
        assert traced, "at least one phase should run a trace"
        assert all(p.engine in ("batch", "fast") for p in traced)

    def test_engine_excluded_from_equality(self, result):
        phase = result.phases[0]
        twin = dataclasses.replace(phase, engine="fast")
        other = dataclasses.replace(phase, engine="batch")
        assert twin == other

    def test_derived_properties(self, result):
        phase = next(p for p in result.phases if p.cycles)
        assert phase.ipc == pytest.approx(phase.instructions / phase.cycles)
        assert phase.mpki == pytest.approx(
            1000.0 * phase.branch_mispredicts / phase.instructions
        )
        combined = phase.demand_service
        assert combined.total == (
            phase.irregular_service.total + phase.streaming_service.total
        )

    def test_counters_shim_roundtrip(self, result):
        phase = result.phases[0]
        legacy = phase.as_counters()
        assert isinstance(legacy, PhaseCounters)
        back = PhaseResult.from_counters(legacy, engine=phase.engine)
        assert back == phase


class TestRunResult:
    def test_provenance_fresh_run(self, result):
        assert result.provenance == PROVENANCE_SIMULATED

    def test_provenance_excluded_from_equality(self, result):
        warm = dataclasses.replace(result, provenance=PROVENANCE_DISK)
        assert warm == result

    def test_engine_aggregate(self, result):
        engines = {p.engine for p in result.phases if p.engine is not None}
        if len(engines) == 1:
            assert result.engine == next(iter(engines))
        else:
            assert result.engine == "mixed"
        untraced = RunResult(workload="w", mode="baseline", phases=())
        assert untraced.engine is None

    def test_phase_lookup(self, result):
        assert result.has_phase("binning")
        assert result.phase("binning").name == "binning"
        with pytest.raises(KeyError):
            result.phase("warmup")
        assert not result.has_phase("warmup")

    def test_aggregates_sum_phases(self, result):
        assert result.cycles == pytest.approx(
            sum(p.cycles for p in result.phases)
        )
        assert result.instructions == sum(p.instructions for p in result.phases)
        assert result.traffic.total_lines == sum(
            p.traffic.total_lines for p in result.phases
        )

    def test_dict_shim_roundtrips(self, result):
        payload = result.as_dict()
        json.dumps(payload)  # JSON-safe
        back = RunResult.from_dict(payload)
        assert back == result
        assert back.provenance == PROVENANCE_DISK
        journal = RunResult.from_dict(payload, provenance=PROVENANCE_JOURNAL)
        assert journal.provenance == PROVENANCE_JOURNAL
        # engine tags survive serialization even though they don't compare
        assert [p.engine for p in back.phases] == [
            p.engine for p in result.phases
        ]

    def test_legacy_counters_shim(self, result):
        legacy = result.as_counters()
        assert isinstance(legacy, RunCounters)
        assert legacy.cycles == pytest.approx(result.cycles)
        assert RunResult.from_counters(legacy) == result

    def test_from_counters_tags_provenance(self):
        legacy = RunCounters(workload="w", mode="baseline", phases=[])
        assert (
            RunResult.from_counters(legacy, provenance=PROVENANCE_JOURNAL)
        ).provenance == PROVENANCE_JOURNAL


class TestRunnerReturnsRunResult:
    def test_run(self, result):
        assert isinstance(result, RunResult)
        assert result.mode == "pb-sw"

    def test_mode_member_and_string_share_memo(self, runner, workload):
        by_member = runner.run(workload, ExecutionMode.COBRA)
        by_string = runner.run(workload, "cobra")
        assert by_member is by_string

    def test_run_characterization_unified(self, runner, workload):
        # regression: characterization flows through the same RunResult
        # shape as every other mode (it used to build counters ad hoc)
        char = runner.run_characterization(workload, use_cache=False)
        assert isinstance(char, RunResult)
        assert char.mode == "characterization"
        assert char.provenance == PROVENANCE_SIMULATED
        assert char.phases and all(
            isinstance(p, PhaseResult) for p in char.phases
        )
        assert char.irregular_service.total > 0

    def test_run_with_spec(self, runner, workload):
        from repro.pb.bins import BinSpec

        spec = BinSpec.from_num_bins(workload.num_indices, 64)
        res = runner.run_with_spec(workload, spec, include_init=False)
        assert isinstance(res, RunResult)
        assert res.mode == f"pb@{spec.num_bins}"

    def test_run_many_serial(self, runner, workload):
        results = runner.run_many([(workload, modes.BASELINE)])
        assert len(results) == 1
        assert isinstance(results[0], RunResult)

    def test_disk_cache_read_is_tagged_and_equal(self, tmp_path, workload):
        from repro.harness.resultcache import ResultCache

        first = Runner(
            max_sim_events=20_000, result_cache=ResultCache(tmp_path)
        ).run(workload, modes.BASELINE)
        second = Runner(
            max_sim_events=20_000, result_cache=ResultCache(tmp_path)
        ).run(workload, modes.BASELINE)
        assert second == first
        assert first.provenance == PROVENANCE_SIMULATED
        assert second.provenance == PROVENANCE_DISK


class TestExperimentRuns:
    def test_driver_exposes_run_results(self):
        from repro.api import run_experiment

        outcome = run_experiment("fig04", scale=14, bin_counts=(64, 256))
        assert len(outcome.runs) == 2
        assert all(isinstance(r, RunResult) for r in outcome.runs)

    def test_unknown_experiment(self):
        from repro.api import run_experiment

        with pytest.raises(ValueError, match="unknown experiment"):
            run_experiment("fig99")
