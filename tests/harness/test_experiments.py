"""Smoke tests for every experiment driver (small scale, narrow sweeps).

Each test checks the driver runs end-to-end and that the *shape* of its
result matches the paper's qualitative claim at test scale. The benchmarks
regenerate the full-scale numbers.
"""

import pytest

from repro.harness import Runner
from repro.harness.experiments import (
    fig02,
    mrc,
    fig04,
    fig05,
    fig10,
    fig10x,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    table1,
)

SCALE = 16


@pytest.fixture(scope="module")
def runner():
    return Runner(max_sim_events=40_000, des_sample=4_000)


class TestFig02:
    def test_all_workloads_reported(self, runner):
        result = fig02.run(runner, scale=SCALE)
        workloads = {row["workload"] for row in result.rows}
        assert len(workloads) == 9
        assert "Figure 2" in result.text

    def test_irregular_updates_miss_the_llc(self, runner):
        result = fig02.run(
            runner, workloads={"degree-count", "pagerank"}, scale=SCALE
        )
        assert all(row["llc_miss_rate"] > 0.2 for row in result.rows)


class TestFig04:
    def test_bin_count_tension(self, runner):
        result = fig04.run(runner, bin_counts=(16, 1024), scale=SCALE)
        few, many = result.rows
        assert few["binning_cycles"] < many["binning_cycles"]
        assert few["accumulate_cycles"] > many["accumulate_cycles"]


class TestFig05AndFig10:
    def test_speedup_ordering(self, runner):
        result = fig10.run(
            runner, workloads={"degree-count", "neighbor-populate"}, scale=SCALE
        )
        for row in result.rows:
            assert row["pb_speedup"] > 1.0
            assert row["cobra_speedup"] > row["pb_speedup"]
        assert result.extras["cobra_over_pb"] > 1.2

    def test_ideal_headroom_positive_for_most(self, runner):
        result = fig05.run(runner, workloads={"degree-count"}, scale=SCALE)
        assert all(row["headroom"] > 1.0 for row in result.rows)


class TestFig11:
    def test_binning_speedup_dominates(self, runner):
        result = fig11.run(runner, workloads={"degree-count"}, scale=SCALE)
        for row in result.rows:
            assert row["binning_speedup"] > row["accumulate_speedup"]
            assert row["binning_speedup"] > 1.5


class TestFig12:
    def test_instruction_reduction_band(self, runner):
        result = fig12.run(
            runner, workloads={"degree-count", "pinv"}, scale=SCALE
        )
        for row in result.rows:
            assert 1.5 < row["instr_reduction"] < 5.5
            assert row["mpki_pb"] > row["mpki_cobra"]


class TestTable1:
    def test_binning_share_grows_with_bins(self, runner):
        result = table1.run(runner, scale=SCALE)
        small, large = result.rows
        assert large["binning_pct"] > small["binning_pct"]
        assert abs(sum(v for k, v in small.items() if k.endswith("_pct")) - 100) < 1


class TestFig13:
    def test_eviction_buffers_stall_curve(self):
        result = fig13.run_eviction_buffers(
            input_names=("KRON",), queue_sizes=(1, 32), trace_len=8_000,
            scale=SCALE,
        )
        by_entries = {row["queue_entries"]: row for row in result.rows}
        assert (
            by_entries[32]["stall_fraction"]
            <= by_entries[1]["stall_fraction"]
        )
        assert by_entries[32]["stall_fraction"] < 0.01

    def test_way_sensitivity_l2_most_sensitive(self):
        result = fig13.run_way_sensitivity(scale=SCALE)
        worst = {
            level: max(
                row["normalized"]
                for row in result.rows
                if row["level"] == level
            )
            for level in ("l1", "l2", "llc")
        }
        assert worst["l2"] >= worst["l1"]
        assert worst["l2"] >= worst["llc"]
        # L1/LLC robustness: within ~15% of best (paper: <=10%).
        assert worst["l1"] < 1.2
        assert worst["llc"] < 1.2

    def test_context_switch_waste_shrinks_with_quantum(self):
        result = fig13.run_context_switch(
            quanta_tuples=(2_000, 64_000), trace_len=64_000, scale=SCALE
        )
        frequent, rare = result.rows
        assert rare["waste_fraction"] < frequent["waste_fraction"]
        assert rare["waste_fraction"] < 0.10


class TestFig14:
    def test_commutative_only_systems_marked(self, runner):
        result = fig14.run(
            runner,
            workload_names=("degree-count", "neighbor-populate"),
            input_names=("KRON",),
            scale=SCALE,
        )
        nc_rows = [
            row
            for row in result.rows
            if row["workload"] == "neighbor-populate"
            and row["system"] in ("phi", "cobra-comm")
        ]
        assert nc_rows and all(not row["applicable"] for row in nc_rows)

    def test_cobra_reduces_traffic_vs_baseline(self, runner):
        result = fig14.run(
            runner,
            workload_names=("degree-count",),
            input_names=("KRON",),
            scale=SCALE,
        )
        cobra = next(r for r in result.rows if r["system"] == "cobra")
        assert cobra["traffic_reduction"] > 1.5


class TestFig15:
    def test_pb_beats_tiling_with_overheads(self, runner):
        # Scale 17: at smaller scales the pagerank working set nearly fits
        # the LLC and blocking has nothing to recover.
        result = fig15.run(runner, input_names=("KRON",), scale=17)
        (row,) = result.rows
        assert row["pb_speedup"] > 1.0
        assert row["tiling_init_fraction"] > row["pb_init_fraction"]
        assert row["pb_speedup"] > row["tiling_speedup"]


class TestFig10x:
    def test_extension_suite_with_ingested_graphs(self, runner):
        result = fig10x.run(
            runner, workloads={"csr-build"}, scale=SCALE
        )
        inputs = {row["input"] for row in result.rows}
        # Synthetic graphs at SCALE plus both ingested real graphs at
        # their fixed natural scales, through the same sweep.
        assert {"KRON", "KARATE", "FLORENT"} <= inputs
        for row in result.rows:
            if row["ingested"]:
                assert row["scale"] < SCALE
            else:
                assert row["scale"] == SCALE
            assert row["pb_speedup"] > 0
        assert "Figure 10x" in result.text
        assert result.extras["cobra"] > 0

    def test_histogram_speedups_follow_the_paper_shape(self, runner):
        result = fig10x.run(runner, workloads={"histogram"}, scale=SCALE)
        rows = {row["input"]: row for row in result.rows}
        assert set(rows) == {"U16", "U64"}
        for row in rows.values():
            assert row["cobra_speedup"] > row["pb_speedup"]
        # The locality benefit tracks the bucket-array footprint: U64's
        # degree-count-sized counts outgrow the LLC and win; U16's
        # narrower array largely fits at test scale, so blocking has
        # less to recover.
        assert rows["U64"]["cobra_speedup"] > 1.0
        assert (
            rows["U64"]["cobra_speedup"] > rows["U16"]["cobra_speedup"]
        )


class TestMrc:
    def test_binned_stream_needs_no_capacity(self, runner):
        result = mrc.run(runner, sizes_kb=(16, 256), scale=SCALE)
        raw = {r["size_kb"]: r for r in result.rows if r["stream"] == "raw"}
        binned = {
            r["size_kb"]: r for r in result.rows if r["stream"] == "binned"
        }
        # The raw stream is capacity-bound; the binned replay is flat at
        # its compulsory floor regardless of LLC size.
        assert raw[16]["dram_per_kilo_update"] > 5 * raw[256][
            "dram_per_kilo_update"
        ] or raw[16]["dram_per_kilo_update"] > 50
        assert (
            binned[16]["dram_per_kilo_update"]
            == binned[256]["dram_per_kilo_update"]
        )
        assert binned[16]["dram_per_kilo_update"] < raw[16][
            "dram_per_kilo_update"
        ] / 10
