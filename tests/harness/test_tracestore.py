"""The memory-mapped trace store: content addressing, zero-copy serving,
and bit-identical integration with the runner's trace pipeline."""

import numpy as np
import pytest

from repro.harness import knobs
from repro.harness.runner import Runner, _materialize_trace
from repro.harness.tracestore import TraceStore, resolve_store


def _segments(rng, width=3, n=500):
    arrays = [rng.integers(0, 1000, size=n).astype(np.int64) for _ in range(width)]
    flags = [bool(i % 2) for i in range(width)]
    return arrays, flags


class TestStore:
    def test_materialize_matches_in_memory(self, tmp_path):
        rng = np.random.default_rng(1)
        arrays, flags = _segments(rng)
        store = TraceStore(tmp_path)
        lines, writes = store.materialize(arrays, flags)
        ref_lines, ref_writes = _materialize_trace(arrays, flags)
        np.testing.assert_array_equal(np.asarray(lines), ref_lines)
        np.testing.assert_array_equal(np.asarray(writes), ref_writes)
        assert store.misses == 1 and store.hits == 0

    def test_served_as_readonly_mmap(self, tmp_path):
        rng = np.random.default_rng(2)
        arrays, flags = _segments(rng)
        store = TraceStore(tmp_path)
        store.materialize(arrays, flags)
        lines, writes = store.materialize(arrays, flags)
        assert isinstance(lines, np.memmap)
        assert isinstance(writes, np.memmap)
        with pytest.raises(ValueError):
            lines[0] = 1  # mmap_mode="r" arrays must be immutable

    def test_second_request_hits(self, tmp_path):
        rng = np.random.default_rng(3)
        arrays, flags = _segments(rng)
        first = TraceStore(tmp_path)
        first.materialize(arrays, flags)
        second = TraceStore(tmp_path)  # a different worker process
        second.materialize(arrays, flags)
        assert second.hits == 1 and second.misses == 0

    def test_content_addressing_discriminates(self, tmp_path):
        store = TraceStore(tmp_path)
        a = [np.array([1, 2, 3, 4], dtype=np.int64)]
        b = [np.array([1, 2, 3, 5], dtype=np.int64)]
        assert store.trace_digest(a, [False]) != store.trace_digest(b, [False])
        # Same concatenated bytes, different segment boundaries:
        split = [np.array([1, 2], dtype=np.int64), np.array([3, 4], dtype=np.int64)]
        assert store.trace_digest(a, [False]) != store.trace_digest(
            split, [False, False]
        )
        # Same lines, different write flags:
        assert store.trace_digest(a, [False]) != store.trace_digest(a, [True])

    def test_entries_and_meta(self, tmp_path):
        rng = np.random.default_rng(4)
        arrays, flags = _segments(rng, width=2, n=100)
        store = TraceStore(tmp_path)
        store.materialize(arrays, flags)
        entries = store.entries()
        assert len(entries) == len(store) == 1
        (meta,) = entries.values()
        assert meta == {"events": 200, "width": 2}

    def test_clear(self, tmp_path):
        rng = np.random.default_rng(5)
        arrays, flags = _segments(rng)
        store = TraceStore(tmp_path)
        store.materialize(arrays, flags)
        store.clear()
        assert len(store) == 0

    def test_torn_entry_rebuilt(self, tmp_path):
        """A missing companion file (crashed writer) is not served."""
        rng = np.random.default_rng(6)
        arrays, flags = _segments(rng)
        store = TraceStore(tmp_path)
        store.materialize(arrays, flags)
        digest = store.trace_digest(arrays, flags)
        (tmp_path / f"{digest}.writes.npy").unlink()
        assert store.entries() == {}
        again = TraceStore(tmp_path)
        again.materialize(arrays, flags)
        assert again.misses == 1


class TestResolve:
    def test_disabled(self):
        assert resolve_store(None) is None
        assert resolve_store("") is None

    def test_path(self, tmp_path):
        store = resolve_store(tmp_path / "traces")
        assert isinstance(store, TraceStore)
        assert store.directory == tmp_path / "traces"

    def test_passthrough(self, tmp_path):
        store = TraceStore(tmp_path)
        assert resolve_store(store) is store

    def test_default_location(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path / "cache"))
        store = resolve_store("1")
        assert store.directory == tmp_path / "cache" / "traces"

    def test_knob_registered(self):
        assert "REPRO_TRACE_STORE" in knobs.registered_names()


class TestRunnerIntegration:
    @pytest.fixture()
    def workload(self):
        from repro.harness.inputs import make_workload

        return make_workload("degree-count", "KRON", scale=12)

    def test_counters_bit_identical(self, tmp_path, workload):
        plain = Runner()
        stored = Runner(trace_store=tmp_path)
        for mode in ("baseline", "pb-sw", "cobra"):
            a = plain.run(workload, mode, use_cache=False).as_dict()
            b = stored.run(workload, mode, use_cache=False).as_dict()
            assert a == b, mode
        assert stored.trace_store.misses > 0

    def test_unchunked_replay_from_store(self, tmp_path, workload):
        reference = Runner(trace_chunk=0)
        stored = Runner(trace_store=tmp_path, trace_chunk=0)
        a = reference.run(workload, "cobra", use_cache=False).as_dict()
        b = stored.run(workload, "cobra", use_cache=False).as_dict()
        assert a == b

    def test_second_runner_maps_existing_traces(self, tmp_path, workload):
        first = Runner(trace_store=tmp_path)
        first.run(workload, "baseline", use_cache=False)
        second = Runner(trace_store=tmp_path)
        second.run(workload, "baseline", use_cache=False)
        assert second.trace_store.hits > 0
        assert second.trace_store.misses == 0

    def test_knob_enables_store(self, tmp_path, monkeypatch, workload):
        monkeypatch.setenv("REPRO_TRACE_STORE", str(tmp_path))
        runner = Runner()
        assert runner.trace_store is not None
        runner.run(workload, "baseline", use_cache=False)
        assert len(runner.trace_store) > 0

    def test_spawn_spec_round_trip(self, tmp_path):
        runner = Runner(trace_store=tmp_path)
        spec = runner.spawn_spec()
        assert spec["trace_store_dir"] == str(tmp_path)
        rebuilt = Runner.from_spec(spec)
        assert rebuilt.trace_store.directory == runner.trace_store.directory

    def test_spawn_spec_without_store(self):
        runner = Runner()
        assert runner.trace_store is None
        assert Runner.from_spec(runner.spawn_spec()).trace_store is None
