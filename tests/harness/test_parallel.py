"""Tests for the multicore execution model."""

import pytest

from repro.harness import BASELINE, COBRA, PB_SW, Runner
from repro.harness.inputs import make_workload
from repro.harness.parallel import ParallelModel

SCALE = 15


@pytest.fixture(scope="module")
def runner():
    return Runner(max_sim_events=30_000, des_sample=3_000)


@pytest.fixture(scope="module")
def model(runner):
    return ParallelModel(runner, coherence_sample=20_000)


@pytest.fixture(scope="module")
def workload():
    return make_workload("pagerank", "KRON", scale=SCALE)


class TestComponents:
    def test_imbalance_one_core(self, model, workload):
        assert model.slice_imbalance(workload, 1) == 1.0

    def test_imbalance_near_one_for_even_splits(self, model, workload):
        assert 1.0 <= model.slice_imbalance(workload, 16) < 1.001

    def test_invalidation_rate_zero_on_one_core(self, model, workload):
        assert model.invalidation_rate(workload, 1) == 0.0

    def test_invalidation_rate_grows_with_cores(self, model, workload):
        two = model.invalidation_rate(workload, 2)
        sixteen = model.invalidation_rate(workload, 16)
        assert 0.0 < two < sixteen <= 1.0

    def test_invalidation_rate_bounded_by_one(self, model, workload):
        assert model.invalidation_rate(workload, 16) <= 1.0


class TestEstimates:
    def test_baseline_pays_coherence(self, model, workload):
        estimate = model.estimate(workload, BASELINE, num_cores=8)
        assert estimate.coherence_cycles > 0
        assert estimate.invalidations_per_update > 0

    def test_pb_and_cobra_are_coherence_free(self, model, workload):
        for mode in (PB_SW, COBRA):
            estimate = model.estimate(workload, mode, num_cores=8)
            assert estimate.coherence_cycles == 0
            assert estimate.invalidations_per_update == 0

    def test_more_cores_reduce_parallel_cycles(self, model, workload):
        one = model.estimate(workload, PB_SW, num_cores=1)
        eight = model.estimate(workload, PB_SW, num_cores=8)
        assert eight.parallel_cycles < one.parallel_cycles

    def test_scaling_curve_monotone_for_pb(self, model, workload):
        curve = model.scaling_curve(workload, PB_SW, core_counts=(1, 4, 16))
        cycles = [e.parallel_cycles for e in curve]
        assert cycles[0] > cycles[1] > cycles[2]

    def test_baseline_scales_worse_than_pb(self, model, workload):
        def speedup(mode):
            curve = model.scaling_curve(workload, mode, core_counts=(1, 16))
            return curve[0].parallel_cycles / curve[1].parallel_cycles

        assert speedup(PB_SW) > speedup(BASELINE)

    def test_efficiency_definition(self, model, workload):
        estimate = model.estimate(workload, PB_SW, num_cores=4)
        assert estimate.efficiency == pytest.approx(
            estimate.speedup_vs_one_core / 4
        )
