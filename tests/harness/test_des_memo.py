"""Regression tests for the DES stall-fraction memo key.

The nondet lint rule flagged the original memo: it was keyed by
``id(trace)``, and CPython reuses addresses after collection, so two
*different* traces could silently share one memoized stall fraction.
The memo is now keyed by trace content (plus every DES parameter).
"""

import numpy as np

from repro.des.eviction_model import EvictionModelConfig
from repro.harness import Runner


def make_runner():
    return Runner(max_sim_events=10_000, des_sample=1_500)


def make_trace(seed, num_indices=64, size=1_500):
    rng = np.random.default_rng(seed)
    return rng.integers(0, num_indices, size=size).astype(np.int64)


def des_keys(runner):
    return [k for k in runner._cache if k[0] == "des"]


class TestContentKeyedMemo:
    def test_equal_content_shares_one_entry(self):
        runner = make_runner()
        config = EvictionModelConfig(num_indices=64)
        trace = make_trace(7)
        first = runner._eviction_stall_fraction(trace, config)
        second = runner._eviction_stall_fraction(trace.copy(), config)
        assert first == second
        assert len(des_keys(runner)) == 1

    def test_distinct_content_never_aliases(self):
        # The id()-keyed bug: free the first trace, allocate a different
        # one (often at the recycled address), and the memo must *not*
        # return the stale stall fraction.
        runner = make_runner()
        # Tiny buffers + single-entry queues so eviction pressure (and
        # hence the stall fraction) actually differs between traces.
        config = EvictionModelConfig(
            num_indices=4_096, l1_buffers=4, l2_buffers=8, llc_buffers=16,
            l1_evict_queue=1, l2_evict_queue=1,
        )
        scattered = make_trace(1, num_indices=4_096)
        first = runner._eviction_stall_fraction(scattered, config)
        hot = np.zeros(1_500, dtype=np.int64)  # fully coalescing trace
        second = runner._eviction_stall_fraction(hot, config)
        assert len(des_keys(runner)) == 2
        assert first != second

    def test_des_parameters_are_part_of_the_key(self):
        runner = make_runner()
        trace = make_trace(7)
        runner._eviction_stall_fraction(
            trace, EvictionModelConfig(num_indices=64, l1_evict_queue=1)
        )
        runner._eviction_stall_fraction(
            trace, EvictionModelConfig(num_indices=64, l1_evict_queue=32)
        )
        assert len(des_keys(runner)) == 2

    def test_memo_ignores_trace_beyond_sample_window(self):
        runner = make_runner()
        config = EvictionModelConfig(num_indices=64)
        trace = make_trace(7, size=3_000)
        longer = np.concatenate([trace, make_trace(8, size=500)])
        runner._eviction_stall_fraction(trace, config)
        runner._eviction_stall_fraction(longer, config)
        # Both share the first des_sample events, so one entry suffices.
        assert len(des_keys(runner)) == 1
