"""The central REPRO_* knob registry (``repro.harness.knobs``).

Includes the regression tests for the defect the knob-registry lint rule
surfaced on the shipped tree: ``REPRO_RESULT_CACHE`` was read by the
result cache but documented nowhere.
"""

from pathlib import Path

import pytest

from repro.harness import knobs
from repro.harness.resultcache import default_cache_dir

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestRegistry:
    def test_read_prefers_explicit_environ(self):
        value = knobs.read(
            "REPRO_TRACE_CHUNK", environ={"REPRO_TRACE_CHUNK": "4096"}
        )
        assert value == "4096"

    def test_read_returns_none_when_unset(self):
        assert knobs.read("REPRO_TRACE_CHUNK", environ={}) is None

    def test_read_uses_process_environment_by_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BRANCH_BACKEND", "scalar")
        assert knobs.read("REPRO_BRANCH_BACKEND") == "scalar"

    def test_unregistered_name_raises_with_known_names(self):
        with pytest.raises(KeyError, match="REPRO_TRACE_CHUNK"):
            knobs.read("REPRO_TYPO")

    def test_registered_names_sorted(self):
        names = knobs.registered_names()
        assert list(names) == sorted(names)
        assert "REPRO_TRACE_CHUNK" in names

    def test_every_knob_declares_a_contract(self):
        for knob in knobs.KNOBS.values():
            assert knob.name.startswith("REPRO_")
            assert knob.doc.strip()
            assert knob.digest_exempt_reason.strip()


class TestEveryKnobIsDocumented:
    """Dynamic twin of the static knob-registry lint rule."""

    def test_every_registered_knob_in_experiments_md(self):
        text = (REPO_ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
        missing = [n for n in knobs.registered_names() if n not in text]
        assert not missing, f"undocumented knobs: {missing}"

    def test_result_cache_knob_registered(self):
        # The defect: REPRO_RESULT_CACHE was read by resultcache.py but
        # absent from any registry or documentation.
        assert "REPRO_RESULT_CACHE" in knobs.KNOBS

    def test_every_knob_is_digest_allowlisted(self):
        from repro.analysis.digest_exempt import DIGEST_EXEMPT

        for name in knobs.registered_names():
            assert name in DIGEST_EXEMPT, (
                f"{name} lacks a digest-purity justification"
            )


class TestResultCacheKnobStillWorks:
    def test_override_directs_cache_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path / "cache"))
        assert default_cache_dir() == tmp_path / "cache"

    def test_unset_falls_back_to_checkout_cache(self, monkeypatch):
        monkeypatch.delenv("REPRO_RESULT_CACHE", raising=False)
        expected = REPO_ROOT / "benchmarks" / "results" / ".cache"
        assert default_cache_dir() == expected
