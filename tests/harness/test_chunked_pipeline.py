"""Chunked trace streaming vs the full-materialization reference path.

``trace_chunk=0`` materializes the whole merged trace (the original
pipeline); any positive chunk size streams fixed-size slices through the
same hierarchy. The two must be bit-identical — every counter, every
phase, every mode, both engines — because hierarchy state persists across
chunk boundaries and stream injection is integer-exact under slicing.
"""

import numpy as np
import pytest

from repro.harness import modes
from repro.harness.inputs import make_workload
from repro.harness.runner import DEFAULT_TRACE_CHUNK, Runner

SCALE = 15

MODES = (modes.BASELINE, modes.PB_SW, modes.COBRA)
WORKLOADS = ("degree-count", "neighbor-populate")


def _run(workload_name, mode, **runner_kwargs):
    runner = Runner(max_sim_events=20_000, **runner_kwargs)
    workload = make_workload(workload_name, "KRON", scale=SCALE)
    return runner.run(workload, mode, use_cache=False)


class TestChunkedBitIdentity:
    @pytest.mark.parametrize("workload_name", WORKLOADS)
    @pytest.mark.parametrize("mode", MODES)
    def test_chunked_equals_reference(self, workload_name, mode):
        reference = _run(workload_name, mode, trace_chunk=0)
        chunked = _run(workload_name, mode, trace_chunk=1009)
        assert chunked == reference

    @pytest.mark.parametrize("engine", ["auto", "fast"])
    def test_both_engines(self, engine):
        reference = _run("degree-count", modes.BASELINE, trace_chunk=0, engine=engine)
        chunked = _run(
            "degree-count", modes.BASELINE, trace_chunk=777, engine=engine
        )
        assert chunked == reference

    @pytest.mark.parametrize("chunk", [1, 63, 4096, 10**9])
    def test_chunk_size_is_immaterial(self, chunk):
        reference = _run("neighbor-populate", modes.PB_SW, trace_chunk=0)
        assert _run("neighbor-populate", modes.PB_SW, trace_chunk=chunk) == reference

    def test_characterization_mode(self):
        runner_ref = Runner(max_sim_events=20_000, trace_chunk=0)
        runner_chk = Runner(max_sim_events=20_000, trace_chunk=501)
        workload = make_workload("degree-count", "KRON", scale=SCALE)
        ref = runner_ref.run_characterization(workload, use_cache=False)
        chk = runner_chk.run_characterization(workload, use_cache=False)
        assert chk == ref


class TestChunkIterator:
    def test_single_array_concatenates_exactly(self):
        runner = Runner(trace_chunk=10)
        lines = np.arange(95, dtype=np.int64)
        parts = list(runner._iter_trace_chunks([lines], [True], 10))
        assert np.concatenate([p[0] for p in parts]).tolist() == lines.tolist()
        assert all(p[1].all() for p in parts)
        assert max(len(p[0]) for p in parts) == 10

    def test_interleaved_concatenates_exactly(self):
        runner = Runner(trace_chunk=8)
        a = np.arange(0, 40, dtype=np.int64)
        b = np.arange(100, 140, dtype=np.int64)
        parts = list(runner._iter_trace_chunks([a, b], [True, False], 8))
        merged = np.concatenate([p[0] for p in parts])
        flags = np.concatenate([p[1] for p in parts])
        # element-wise interleave: a0 b0 a1 b1 ...
        assert merged[:4].tolist() == [0, 100, 1, 101]
        assert len(merged) == 80
        assert flags.tolist() == [True, False] * 40
        # boundaries fall on whole rounds: every chunk has even length
        assert all(len(p[0]) % 2 == 0 for p in parts)

    def test_merge_chunk_slices_match_full_merge(self):
        runner = Runner()
        runner._stream_base = 10_000
        lines = np.arange(57, dtype=np.int64)
        writes = np.ones(57, dtype=bool)
        full = runner._interleaved_trace(lines, writes, 23, 57)
        pieces = []
        offset = 0
        for size in (10, 10, 10, 10, 10, 7):
            part = runner._merge_chunk(
                lines[offset : offset + size],
                writes[offset : offset + size],
                23,
                57,
                offset,
            )
            pieces.append(part)
            offset += size
        for i in range(3):
            joined = np.concatenate([p[i] for p in pieces])
            assert joined.tolist() == full[i].tolist()


class TestChunkKnob:
    def test_constructor_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CHUNK", "12345")
        assert Runner(trace_chunk=7).trace_chunk_size() == 7
        assert Runner(trace_chunk=0).trace_chunk_size() == 0

    def test_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CHUNK", "2048")
        assert Runner().trace_chunk_size() == 2048
        monkeypatch.setenv("REPRO_TRACE_CHUNK", "0")
        assert Runner().trace_chunk_size() == 0

    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_CHUNK", raising=False)
        assert Runner().trace_chunk_size() == DEFAULT_TRACE_CHUNK

    def test_spawn_spec_carries_chunk_setting(self):
        runner = Runner(trace_chunk=99)
        spec = runner.spawn_spec()
        assert spec["trace_chunk"] == 99
        rebuilt = Runner.from_spec(spec)
        assert rebuilt.trace_chunk_size() == 99

    def test_chunking_absent_from_digest(self):
        # bit-identical results must share one cache entry across chunk sizes
        workload = make_workload("degree-count", "KRON", scale=SCALE)
        digests = {
            Runner(max_sim_events=20_000, trace_chunk=chunk)._digest(
                workload.cache_key, "baseline"
            )
            for chunk in (0, 64, DEFAULT_TRACE_CHUNK)
        }
        assert len(digests) == 1
