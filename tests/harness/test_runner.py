"""Tests for the experiment runner (small-scale end-to-end)."""

import pytest

from repro.harness import (
    BASELINE,
    COBRA,
    COBRA_COMM,
    PB_SW,
    PHI,
    Runner,
)
from repro.harness.inputs import make_workload
from repro.pb import BinSpec

SCALE = 16


@pytest.fixture(scope="module")
def runner():
    return Runner(max_sim_events=50_000, des_sample=5_000)


@pytest.fixture(scope="module")
def degree_count(runner):
    return make_workload("degree-count", "KRON", scale=SCALE)


@pytest.fixture(scope="module")
def neighbor_populate(runner):
    return make_workload("neighbor-populate", "KRON", scale=SCALE)


class TestModes:
    def test_baseline_single_phase(self, runner, degree_count):
        counters = runner.run(degree_count, BASELINE)
        assert [p.name for p in counters.phases] == ["main"]
        assert counters.cycles > 0

    def test_pb_three_phases(self, runner, degree_count):
        counters = runner.run(degree_count, PB_SW)
        assert [p.name for p in counters.phases] == [
            "init",
            "binning",
            "accumulate",
        ]

    def test_cobra_three_phases(self, runner, degree_count):
        counters = runner.run(degree_count, COBRA)
        assert [p.name for p in counters.phases] == [
            "init",
            "binning",
            "accumulate",
        ]
        # Hardware binning: no cache-visible irregular accesses.
        assert counters.phase("binning").irregular_service.total == 0

    def test_speedup_ordering(self, runner, degree_count):
        base = runner.run(degree_count, BASELINE).cycles
        pb = runner.run(degree_count, PB_SW).cycles
        cobra = runner.run(degree_count, COBRA).cycles
        assert base > pb > cobra

    def test_commutative_modes_on_commutative_workload(
        self, runner, degree_count
    ):
        for mode in (PHI, COBRA_COMM):
            counters = runner.run(degree_count, mode)
            assert counters.cycles > 0

    def test_commutative_modes_rejected_for_noncommutative(
        self, runner, neighbor_populate
    ):
        for mode in (PHI, COBRA_COMM):
            with pytest.raises(ValueError, match="commutative"):
                runner.run(neighbor_populate, mode)

    def test_unknown_mode_rejected(self, runner, degree_count):
        with pytest.raises(ValueError, match="unknown mode"):
            runner.run(degree_count, "warp-drive")


class TestCaching:
    def test_results_memoized(self, runner, degree_count):
        first = runner.run(degree_count, BASELINE)
        second = runner.run(degree_count, BASELINE)
        assert first is second

    def test_cache_bypass(self, runner, degree_count):
        first = runner.run(degree_count, BASELINE)
        fresh = runner.run(degree_count, BASELINE, use_cache=False)
        assert fresh is not first
        assert fresh.cycles == pytest.approx(first.cycles, rel=0.05)


class TestRunWithSpec:
    def test_bin_count_tension(self, runner, neighbor_populate):
        """The Figure 4 shape: more bins slow Binning, speed Accumulate."""
        few = BinSpec.from_num_bins(neighbor_populate.num_indices, 16)
        many = BinSpec.from_num_bins(neighbor_populate.num_indices, 2048)
        few_run = runner.run_with_spec(neighbor_populate, few, include_init=False)
        many_run = runner.run_with_spec(neighbor_populate, many, include_init=False)
        assert (
            few_run.phase("binning").cycles < many_run.phase("binning").cycles
        )
        assert (
            few_run.phase("accumulate").cycles
            > many_run.phase("accumulate").cycles
        )


class TestCharacterization:
    def test_intsort_characterization_differs_from_baseline(self, runner):
        workload = make_workload("integer-sort", "U16", scale=SCALE)
        baseline = runner.run(workload, BASELINE)
        character = runner.run_characterization(workload)
        assert baseline.phase("main").irregular_service.total == 0
        assert character.phase("main").irregular_service.total > 0

    def test_high_llc_missrate_for_irregular_baseline(self, runner, degree_count):
        """Figure 2's claim at test scale: irregular updates miss the LLC."""
        counters = runner.run_characterization(degree_count)
        assert counters.irregular_service.llc_miss_rate > 0.3


class TestPhaseAccounting:
    def test_traffic_nonzero(self, runner, degree_count):
        counters = runner.run(degree_count, PB_SW)
        assert counters.traffic.reads > 0
        assert counters.traffic.writes > 0

    def test_pb_binning_has_mispredicts(self, runner, degree_count):
        binning = runner.run(degree_count, PB_SW).phase("binning")
        assert binning.branch_mispredicts > 0

    def test_cobra_binning_has_no_cbuffer_mispredicts(
        self, runner, degree_count
    ):
        binning = runner.run(degree_count, COBRA).phase("binning")
        assert binning.branch_mispredicts == 0
