"""Tests for the append-only BENCH_*.json history envelope."""

import json
import re

import pytest

from repro.harness.benchhistory import (
    FORMAT_VERSION,
    append_bench_record,
    bench_name_for,
    current_git_sha,
    iso_utc,
    load_history,
)


class TestNaming:
    def test_bench_name_strips_prefix(self):
        assert bench_name_for("results/BENCH_compiled_kernels.json") == (
            "compiled_kernels"
        )
        assert bench_name_for("odd.json") == "odd"


class TestStamps:
    def test_iso_utc_shape_and_determinism(self):
        assert iso_utc(0) == "1970-01-01T00:00:00Z"
        assert re.fullmatch(
            r"\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}Z", iso_utc()
        )

    def test_git_sha_in_repo_and_out(self, tmp_path):
        assert re.fullmatch(r"[0-9a-f]{40}", current_git_sha())
        assert current_git_sha(tmp_path) == "unknown"


class TestAppend:
    def test_first_append_creates_envelope(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        history = append_bench_record(
            path, {"speedup": 2.0}, git_sha="abc", recorded="2026-08-08T00:00:00Z"
        )
        assert history["version"] == FORMAT_VERSION
        assert history["bench"] == "x"
        on_disk = json.loads(path.read_text("utf-8"))
        assert on_disk == history
        (entry,) = on_disk["entries"]
        assert entry == {
            "recorded": "2026-08-08T00:00:00Z",
            "git_sha": "abc",
            "record": {"speedup": 2.0},
        }

    def test_appends_never_overwrite(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        append_bench_record(path, {"run": 1}, git_sha="a")
        append_bench_record(path, {"run": 2}, git_sha="b")
        history = load_history(path)
        assert [e["record"]["run"] for e in history["entries"]] == [1, 2]
        assert [e["git_sha"] for e in history["entries"]] == ["a", "b"]

    def test_legacy_bare_record_migrates_as_entry_zero(self, tmp_path):
        path = tmp_path / "BENCH_legacy.json"
        path.write_text(json.dumps({"speedup": 9.0}), "utf-8")
        append_bench_record(path, {"speedup": 9.5}, git_sha="new")
        history = load_history(path)
        first, second = history["entries"]
        # The pre-schema measurement survives, minus the provenance the
        # old writers never recorded.
        assert first == {
            "recorded": None,
            "git_sha": None,
            "record": {"speedup": 9.0},
        }
        assert second["git_sha"] == "new"

    def test_defaults_fill_sha_and_stamp(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        append_bench_record(path, {"v": 1})
        (entry,) = load_history(path)["entries"]
        # tmp_path is no git checkout, so the sha degrades gracefully.
        assert entry["git_sha"] == "unknown"
        assert entry["recorded"].endswith("Z")

    def test_corrupt_history_restarts_envelope(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text("torn{", "utf-8")
        append_bench_record(path, {"v": 1}, git_sha="a")
        history = load_history(path)
        assert [e["record"] for e in history["entries"]] == [{"v": 1}]


class TestLoad:
    def test_missing_file_is_empty_envelope(self, tmp_path):
        history = load_history(tmp_path / "BENCH_none.json")
        assert history == {
            "version": FORMAT_VERSION,
            "bench": "none",
            "entries": [],
        }

    def test_corrupt_json_raises(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text("nope{", "utf-8")
        with pytest.raises(ValueError):
            load_history(path)

    def test_non_object_payload_raises(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text("[1, 2]", "utf-8")
        with pytest.raises(ValueError, match="not a JSON object"):
            load_history(path)

    def test_version_drift_raises(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(
            json.dumps({"version": 99, "entries": []}), "utf-8"
        )
        with pytest.raises(ValueError, match="version"):
            load_history(path)


class TestMigratedSeedFile:
    def test_surviving_bench_file_is_enveloped(self):
        """The one BENCH file that survived the overwrites was migrated."""
        from pathlib import Path

        path = (
            Path(__file__).resolve().parents[2]
            / "benchmarks"
            / "results"
            / "BENCH_compiled_kernels.json"
        )
        history = load_history(path)
        assert history["version"] == FORMAT_VERSION
        assert history["bench"] == "compiled_kernels"
        assert len(history["entries"]) >= 1
        assert history["entries"][0]["git_sha"]
