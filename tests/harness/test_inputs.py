"""Tests for the standard input suite."""

import pytest

from repro.harness.inputs import (
    GRAPH_NAMES,
    MATRIX_NAMES,
    WORKLOAD_INPUTS,
    describe_inputs,
    load_csr,
    load_graph,
    load_matrix,
    make_workload,
    workload_instances,
)

SCALE = 13  # small inputs for tests


class TestLoaders:
    def test_graphs_exist(self):
        for name in GRAPH_NAMES:
            edges = load_graph(name, scale=SCALE)
            assert edges.num_edges > 0

    def test_graphs_are_cached(self):
        assert load_graph("KRON", scale=SCALE) is load_graph("KRON", scale=SCALE)

    def test_unknown_graph_rejected(self):
        with pytest.raises(KeyError):
            load_graph("NOPE", scale=SCALE)

    def test_csr_matches_edges(self):
        csr = load_csr("URND", scale=SCALE)
        edges = load_graph("URND", scale=SCALE)
        assert csr.num_edges == edges.num_edges

    def test_matrices_exist(self):
        for name in MATRIX_NAMES:
            matrix = load_matrix(name, scale=SCALE)
            assert matrix.nnz > 0

    def test_unknown_matrix_rejected(self):
        with pytest.raises(KeyError):
            load_matrix("NOPE", scale=SCALE)


class TestWorkloadFactory:
    @pytest.mark.parametrize("workload_name", sorted(WORKLOAD_INPUTS))
    def test_every_workload_instantiates(self, workload_name):
        input_name = WORKLOAD_INPUTS[workload_name][0]
        workload = make_workload(workload_name, input_name, scale=SCALE)
        assert workload.num_updates > 0
        assert workload.cache_key.startswith(workload_name)

    def test_instances_are_cached(self):
        a = make_workload("degree-count", "KRON", scale=SCALE)
        b = make_workload("degree-count", "KRON", scale=SCALE)
        assert a is b

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            make_workload("nope", "KRON", scale=SCALE)

    def test_workload_instances_iterates_suite(self):
        triples = list(workload_instances(scale=SCALE))
        names = {name for name, _input, _wl in triples}
        assert names == set(WORKLOAD_INPUTS)
        expected = sum(len(v) for v in WORKLOAD_INPUTS.values())
        assert len(triples) == expected

    def test_workload_filter(self):
        triples = list(workload_instances(scale=SCALE, workloads={"pagerank"}))
        assert all(name == "pagerank" for name, _i, _w in triples)
        assert len(triples) == len(WORKLOAD_INPUTS["pagerank"])


class TestDescribeInputs:
    def test_table_iii_analog(self):
        rows = describe_inputs(scale=SCALE)
        kinds = {row["kind"] for row in rows}
        assert kinds == {"graph", "matrix"}
        assert len(rows) == len(GRAPH_NAMES) + len(MATRIX_NAMES)
