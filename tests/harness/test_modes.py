"""Tests for mode constants and their use across the harness."""

from repro.harness import modes


class TestModeConstants:
    def test_all_modes_distinct(self):
        assert len(set(modes.ALL_MODES)) == len(modes.ALL_MODES)

    def test_commutative_only_subset(self):
        assert modes.COMMUTATIVE_ONLY_MODES < set(modes.ALL_MODES)
        assert modes.COMMUTATIVE_ONLY_MODES == {modes.PHI, modes.COBRA_COMM}

    def test_baseline_not_commutative_restricted(self):
        assert modes.BASELINE not in modes.COMMUTATIVE_ONLY_MODES
        assert modes.COBRA not in modes.COMMUTATIVE_ONLY_MODES

    def test_mode_strings_are_stable_identifiers(self):
        # Cache keys and report rows depend on these exact strings.
        assert modes.BASELINE == "baseline"
        assert modes.PB_SW == "pb-sw"
        assert modes.PB_SW_IDEAL == "pb-sw-ideal"
        assert modes.COBRA == "cobra"
        assert modes.COBRA_COMM == "cobra-comm"
        assert modes.PHI == "phi"
