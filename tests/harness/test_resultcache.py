"""Tests for the persistent on-disk result cache."""

import dataclasses
import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.harness import Runner
from repro.harness.inputs import make_workload
from repro.harness.machine import DEFAULT_MACHINE
from repro.harness.modes import BASELINE, CHARACTERIZATION, PB_SW
from repro.harness.resultcache import (
    ResultCache,
    counters_from_dict,
    counters_to_dict,
    default_cache_dir,
    run_digest,
)

SCALE = 13


@pytest.fixture()
def workload():
    return make_workload("degree-count", "KRON", scale=SCALE)


def fresh_runner(tmp_path):
    return Runner(max_sim_events=20_000, result_cache=ResultCache(tmp_path))


class TestWarmRuns:
    def test_second_run_is_bit_identical(self, tmp_path, workload):
        """A brand-new runner (cold memo) must reproduce the exact counters
        from disk — every int and float equal, via dataclass equality."""
        first = fresh_runner(tmp_path).run(workload, BASELINE)
        warm_runner = fresh_runner(tmp_path)
        second = warm_runner.run(workload, BASELINE)
        assert second == first
        assert warm_runner.result_cache.hits == 1
        assert warm_runner.result_cache.misses == 0

    def test_characterization_cached_too(self, tmp_path, workload):
        first = fresh_runner(tmp_path).run_characterization(workload)
        second = fresh_runner(tmp_path).run_characterization(workload)
        assert second == first
        assert second.mode == CHARACTERIZATION

    def test_use_cache_false_skips_disk(self, tmp_path, workload):
        runner = fresh_runner(tmp_path)
        runner.run(workload, BASELINE, use_cache=False)
        assert len(runner.result_cache) == 0

    def test_roundtrip_preserves_every_field(self, tmp_path, workload):
        counters = fresh_runner(tmp_path).run(workload, PB_SW)
        rebuilt = counters_from_dict(
            json.loads(json.dumps(counters_to_dict(counters)))
        )
        for original, restored in zip(counters.phases, rebuilt.phases):
            for field in dataclasses.fields(original):
                assert getattr(original, field.name) == getattr(
                    restored, field.name
                ), field.name


class TestCacheStore:
    def test_missing_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("0" * 64) is None
        assert cache.misses == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path, workload):
        runner = fresh_runner(tmp_path)
        runner.run(workload, BASELINE)
        (entry,) = tmp_path.glob("*.json")
        entry.write_text("{ truncated", "utf-8")
        assert fresh_runner(tmp_path).run(workload, BASELINE) is not None

    def test_clear_removes_entries(self, tmp_path, workload):
        runner = fresh_runner(tmp_path)
        runner.run(workload, BASELINE)
        assert len(runner.result_cache) == 1
        assert runner.result_cache.clear() == 1
        assert len(runner.result_cache) == 0

    def test_version_mismatch_is_a_miss(self, tmp_path, workload):
        runner = fresh_runner(tmp_path)
        runner.run(workload, BASELINE)
        (entry,) = tmp_path.glob("*.json")
        payload = json.loads(entry.read_text("utf-8"))
        payload["version"] = -1
        entry.write_text(json.dumps(payload), "utf-8")
        cache = ResultCache(tmp_path)
        assert cache.get(entry.stem) is None


class TestDigest:
    PARAMS = {"max_sim_events": 20_000}

    def digest(self, **overrides):
        kwargs = {
            "machine": DEFAULT_MACHINE,
            "runner_params": self.PARAMS,
            "cache_key": "degree-count:KRON:13",
            "mode": BASELINE,
        }
        kwargs.update(overrides)
        return run_digest(**kwargs)

    def test_digest_is_stable(self):
        assert self.digest() == self.digest()

    def test_mode_changes_digest(self):
        assert self.digest() != self.digest(mode=PB_SW)

    def test_workload_changes_digest(self):
        assert self.digest() != self.digest(cache_key="pagerank:KRON:13")

    def test_runner_params_change_digest(self):
        assert self.digest() != self.digest(
            runner_params={"max_sim_events": 10_000}
        )

    def test_machine_changes_digest(self):
        import dataclasses as dc

        hierarchy = dc.replace(DEFAULT_MACHINE.hierarchy, llc_ways=8)
        machine = dc.replace(DEFAULT_MACHINE, hierarchy=hierarchy)
        assert self.digest() != self.digest(machine=machine)

    def test_runner_digests_differ_across_machines(self, tmp_path, workload):
        """Two runners with different sim budgets must not share entries."""
        cache = ResultCache(tmp_path)
        a = Runner(max_sim_events=20_000, result_cache=cache)
        b = Runner(max_sim_events=10_000, result_cache=cache)
        a.run(workload, BASELINE)
        b.run(workload, BASELINE)
        assert len(cache) == 2


class TestDigestStrictness:
    """Regression tests for the ``default=repr`` digest bug: any payload
    object whose repr embeds a memory address made the digest unique per
    process, so a warm cache could never hit across invocations."""

    def test_object_with_default_repr_raises(self):
        class Opaque:
            pass

        params = {"max_sim_events": 20_000, "hook": Opaque()}
        with pytest.raises(TypeError, match="non-canonical"):
            run_digest(DEFAULT_MACHINE, params, "a:b:1", BASELINE)

    def test_numpy_scalars_digest_like_python_scalars(self):
        plain = run_digest(
            DEFAULT_MACHINE, {"max_sim_events": 20_000}, "a:b:1", BASELINE
        )
        numpied = run_digest(
            DEFAULT_MACHINE,
            {"max_sim_events": np.int64(20_000)},
            "a:b:1",
            BASELINE,
        )
        assert plain == numpied

    def test_numpy_arrays_and_floats_are_canonical(self):
        params = {
            "weights": np.array([1.0, 2.5]),
            "flag": np.bool_(True),
            "ratio": np.float64(0.5),
        }
        first = run_digest(DEFAULT_MACHINE, params, "a:b:1", BASELINE)
        second = run_digest(DEFAULT_MACHINE, dict(params), "a:b:1", BASELINE)
        assert first == second

    def test_digest_stable_across_processes(self):
        """The digest of the default configuration must be identical when
        computed in a fresh interpreter (this is what makes a warm cache
        hit across separate sweep invocations)."""
        local = run_digest(
            DEFAULT_MACHINE, {"max_sim_events": 20_000}, "a:b:1", BASELINE
        )
        script = (
            "from repro.harness.machine import DEFAULT_MACHINE\n"
            "from repro.harness.modes import BASELINE\n"
            "from repro.harness.resultcache import run_digest\n"
            "print(run_digest(DEFAULT_MACHINE, {'max_sim_events': 20_000},"
            " 'a:b:1', BASELINE))\n"
        )
        remote = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            env={**os.environ, "PYTHONPATH": _src_path()},
        ).stdout.strip()
        assert remote == local

    def test_warm_hit_rate_is_total_across_processes(self, tmp_path, workload):
        """Two identical runs in separate processes: the second must be
        100% cache hits (the acceptance bar for the digest-stability fix)."""
        script = (
            "import sys\n"
            "from repro.harness import Runner\n"
            "from repro.harness.inputs import make_workload\n"
            "from repro.harness.modes import BASELINE, PB_SW\n"
            "from repro.harness.resultcache import ResultCache\n"
            f"cache = ResultCache({str(tmp_path)!r})\n"
            "runner = Runner(max_sim_events=20_000, result_cache=cache)\n"
            f"w = make_workload('degree-count', 'KRON', scale={SCALE})\n"
            "runner.run(w, BASELINE)\n"
            "runner.run(w, PB_SW)\n"
            "print(cache.hits, cache.misses)\n"
        )
        env = {**os.environ, "PYTHONPATH": _src_path()}
        cold = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True, env=env,
        ).stdout.split()
        warm = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True, env=env,
        ).stdout.split()
        assert cold == ["0", "2"]
        assert warm == ["2", "0"]


class TestDefaultCacheDir:
    def test_env_override_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path / "override"))
        assert default_cache_dir() == tmp_path / "override"

    def test_repo_checkout_uses_in_repo_dir(self, monkeypatch):
        monkeypatch.delenv("REPRO_RESULT_CACHE", raising=False)
        repo_root = Path(__file__).resolve().parents[2]
        module = repo_root / "src" / "repro" / "harness" / "resultcache.py"
        assert default_cache_dir(module) == (
            repo_root / "benchmarks" / "results" / ".cache"
        )

    def test_installed_package_falls_back_to_user_cache(
        self, tmp_path, monkeypatch
    ):
        """Regression: ``parents[3]`` of a pip-installed module resolves
        into the environment's lib directory — cache entries must not be
        silently written there."""
        monkeypatch.delenv("REPRO_RESULT_CACHE", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        site = tmp_path / "venv" / "lib" / "python3.11" / "site-packages"
        module = site / "repro" / "harness" / "resultcache.py"
        module.parent.mkdir(parents=True)
        module.write_text("# installed copy")
        resolved = default_cache_dir(module)
        assert resolved == tmp_path / "xdg" / "repro" / "results"
        assert not str(resolved).startswith(str(site.parents[1]))

    def test_shallow_path_falls_back_to_user_cache(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.delenv("REPRO_RESULT_CACHE", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir(Path("/x.py")) == (
            tmp_path / "xdg" / "repro" / "results"
        )


class TestTmpFileHygiene:
    def test_failed_replace_leaves_no_tmp(self, tmp_path, workload, monkeypatch):
        """A failed store (e.g. disk full at rename time) must clean up its
        tmp file, count as a write error, and not raise."""
        runner = fresh_runner(tmp_path)
        counters = runner.run(workload, BASELINE, use_cache=False)
        cache = runner.result_cache

        def exploding_replace(src, dst):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(os, "replace", exploding_replace)
        assert cache.put("f" * 64, counters) is False
        assert cache.write_errors == 1
        assert list(tmp_path.glob("*.tmp")) == []
        assert cache.get("f" * 64) is None  # nothing partially stored

    def test_failed_write_text_leaves_no_tmp(
        self, tmp_path, workload, monkeypatch
    ):
        runner = fresh_runner(tmp_path)
        counters = runner.run(workload, BASELINE, use_cache=False)
        cache = runner.result_cache

        def exploding_write_text(self, *args, **kwargs):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(Path, "write_text", exploding_write_text)
        assert cache.put("f" * 64, counters) is False
        assert list(tmp_path.glob("*.tmp")) == []

    def test_len_and_clear_ignore_stray_tmp_files(self, tmp_path, workload):
        runner = fresh_runner(tmp_path)
        runner.run(workload, BASELINE)
        stray = tmp_path / f"{'a' * 64}.12345.tmp"
        stray.write_text("{ partial")
        cache = runner.result_cache
        assert len(cache) == 1  # the stray does not count
        assert cache.clear() == 1  # ...nor inflate the removal total
        assert not stray.exists()  # ...but it is swept away

    def test_put_failure_never_aborts_the_run(
        self, tmp_path, workload, monkeypatch
    ):
        """A read-only cache directory degrades to write errors, not a
        crashed sweep."""
        runner = fresh_runner(tmp_path)
        monkeypatch.setattr(
            Path,
            "write_text",
            lambda self, *a, **k: (_ for _ in ()).throw(OSError(30, "ro")),
        )
        counters = runner.run(workload, BASELINE)  # persists via put()
        assert counters is not None
        assert runner.result_cache.write_errors == 1


class TestConcurrentAccess:
    def test_len_and_clear_on_missing_directory(self, tmp_path):
        cache = ResultCache(tmp_path / "never-created")
        assert len(cache) == 0
        assert cache.clear() == 0

    def test_clear_survives_entries_vanishing_mid_scan(
        self, tmp_path, workload, monkeypatch
    ):
        """A concurrent clear may delete entries between glob and unlink;
        neither clear() nor len() may raise."""
        runner = fresh_runner(tmp_path)
        runner.run(workload, BASELINE)
        cache = runner.result_cache
        real_glob = Path.glob

        def racing_glob(self, pattern):
            for path in list(real_glob(self, pattern)):
                path.unlink(missing_ok=True)  # the "other process" wins
                yield path

        monkeypatch.setattr(Path, "glob", racing_glob)
        assert cache.clear() == 0
        assert len(cache) >= 0

    def test_len_and_clear_survive_directory_removal_mid_scan(
        self, tmp_path, workload, monkeypatch
    ):
        """The directory itself vanishing mid-iteration (FileNotFoundError
        out of the glob generator) must count as empty, not raise."""
        runner = fresh_runner(tmp_path)
        runner.run(workload, BASELINE)
        cache = runner.result_cache

        def exploding_glob(self, pattern):
            raise FileNotFoundError(2, "gone", str(self))
            yield  # pragma: no cover

        monkeypatch.setattr(Path, "glob", exploding_glob)
        assert len(cache) == 0
        assert cache.clear() == 0

    def test_concurrent_clears_never_raise(self, tmp_path, workload):
        """Two threads clearing the same directory race on every unlink."""
        import threading

        runner = fresh_runner(tmp_path)
        runner.run(workload, BASELINE)
        runner.run(workload, PB_SW)
        cache = runner.result_cache
        removed = []
        errors = []

        def clear():
            try:
                removed.append(cache.clear())
            except BaseException as exc:  # noqa: BLE001 - test assertion
                errors.append(exc)

        threads = [threading.Thread(target=clear) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert sum(removed) == 2
        assert len(cache) == 0

    def test_two_process_put_get_stress(self, tmp_path, workload):
        """Two processes hammering the same digests concurrently must never
        corrupt an entry: every get returns either None or a fully valid
        payload, and the survivors parse."""
        script = (
            "import json, sys\n"
            "from repro.harness import Runner\n"
            "from repro.harness.inputs import make_workload\n"
            "from repro.harness.modes import BASELINE\n"
            "from repro.harness.resultcache import ResultCache,"
            " counters_to_dict, counters_from_dict\n"
            f"w = make_workload('degree-count', 'KRON', scale={SCALE})\n"
            "runner = Runner(max_sim_events=20_000)\n"
            "counters = runner.run(w, BASELINE, use_cache=False)\n"
            f"cache = ResultCache({str(tmp_path)!r})\n"
            "digests = ['%064x' % d for d in range(8)]\n"
            "for round in range(25):\n"
            "    for digest in digests:\n"
            "        cache.put(digest, counters)\n"
            "        got = cache.get(digest)\n"
            "        assert got is None or got == counters\n"
            "print('ok')\n"
        )
        env = {**os.environ, "PYTHONPATH": _src_path()}
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
                env=env,
            )
            for _ in range(2)
        ]
        for proc in procs:
            out, err = proc.communicate(timeout=300)
            assert proc.returncode == 0, err
            assert out.strip() == "ok"
        cache = ResultCache(tmp_path)
        assert len(cache) == 8
        for digest in ["%064x" % d for d in range(8)]:
            assert cache.get(digest) is not None
        assert list(tmp_path.glob("*.tmp")) == []


def _src_path():
    src = str(Path(__file__).resolve().parents[2] / "src")
    existing = os.environ.get("PYTHONPATH", "")
    return f"{src}{os.pathsep}{existing}" if existing else src


class TestReadThroughUnderPut:
    """Concurrent readers during put(): never a partial entry."""

    def test_threaded_readers_see_none_or_complete(self, tmp_path, workload):
        import threading

        result = Runner(result_cache=None, max_sim_events=20_000).run(
            workload, BASELINE, use_cache=False
        )
        reference = counters_to_dict(result)
        cache = ResultCache(tmp_path)
        digest = "ab" * 32
        stop = threading.Event()
        torn = []

        def reader():
            while not stop.is_set():
                got = cache.get(digest)
                if got is None:
                    continue
                # Atomic os.replace publication: a hit is always complete.
                if counters_to_dict(got) != reference:
                    torn.append(got)
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        # Republish the same entry repeatedly while the readers hammer it;
        # any in-progress tmp write must stay invisible.
        for _ in range(25):
            assert cache.put(digest, result)
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
        assert torn == []
        assert list(tmp_path.glob("*.tmp")) == []
        final = cache.get(digest)
        assert counters_to_dict(final) == reference
