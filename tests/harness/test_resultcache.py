"""Tests for the persistent on-disk result cache."""

import dataclasses
import json

import pytest

from repro.harness import Runner
from repro.harness.inputs import make_workload
from repro.harness.machine import DEFAULT_MACHINE
from repro.harness.modes import BASELINE, CHARACTERIZATION, PB_SW
from repro.harness.resultcache import (
    ResultCache,
    counters_from_dict,
    counters_to_dict,
    run_digest,
)

SCALE = 13


@pytest.fixture()
def workload():
    return make_workload("degree-count", "KRON", scale=SCALE)


def fresh_runner(tmp_path):
    return Runner(max_sim_events=20_000, result_cache=ResultCache(tmp_path))


class TestWarmRuns:
    def test_second_run_is_bit_identical(self, tmp_path, workload):
        """A brand-new runner (cold memo) must reproduce the exact counters
        from disk — every int and float equal, via dataclass equality."""
        first = fresh_runner(tmp_path).run(workload, BASELINE)
        warm_runner = fresh_runner(tmp_path)
        second = warm_runner.run(workload, BASELINE)
        assert second == first
        assert warm_runner.result_cache.hits == 1
        assert warm_runner.result_cache.misses == 0

    def test_characterization_cached_too(self, tmp_path, workload):
        first = fresh_runner(tmp_path).run_characterization(workload)
        second = fresh_runner(tmp_path).run_characterization(workload)
        assert second == first
        assert second.mode == CHARACTERIZATION

    def test_use_cache_false_skips_disk(self, tmp_path, workload):
        runner = fresh_runner(tmp_path)
        runner.run(workload, BASELINE, use_cache=False)
        assert len(runner.result_cache) == 0

    def test_roundtrip_preserves_every_field(self, tmp_path, workload):
        counters = fresh_runner(tmp_path).run(workload, PB_SW)
        rebuilt = counters_from_dict(
            json.loads(json.dumps(counters_to_dict(counters)))
        )
        for original, restored in zip(counters.phases, rebuilt.phases):
            for field in dataclasses.fields(original):
                assert getattr(original, field.name) == getattr(
                    restored, field.name
                ), field.name


class TestCacheStore:
    def test_missing_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("0" * 64) is None
        assert cache.misses == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path, workload):
        runner = fresh_runner(tmp_path)
        runner.run(workload, BASELINE)
        (entry,) = tmp_path.glob("*.json")
        entry.write_text("{ truncated", "utf-8")
        assert fresh_runner(tmp_path).run(workload, BASELINE) is not None

    def test_clear_removes_entries(self, tmp_path, workload):
        runner = fresh_runner(tmp_path)
        runner.run(workload, BASELINE)
        assert len(runner.result_cache) == 1
        assert runner.result_cache.clear() == 1
        assert len(runner.result_cache) == 0

    def test_version_mismatch_is_a_miss(self, tmp_path, workload):
        runner = fresh_runner(tmp_path)
        runner.run(workload, BASELINE)
        (entry,) = tmp_path.glob("*.json")
        payload = json.loads(entry.read_text("utf-8"))
        payload["version"] = -1
        entry.write_text(json.dumps(payload), "utf-8")
        cache = ResultCache(tmp_path)
        assert cache.get(entry.stem) is None


class TestDigest:
    PARAMS = {"max_sim_events": 20_000}

    def digest(self, **overrides):
        kwargs = {
            "machine": DEFAULT_MACHINE,
            "runner_params": self.PARAMS,
            "cache_key": "degree-count:KRON:13",
            "mode": BASELINE,
        }
        kwargs.update(overrides)
        return run_digest(**kwargs)

    def test_digest_is_stable(self):
        assert self.digest() == self.digest()

    def test_mode_changes_digest(self):
        assert self.digest() != self.digest(mode=PB_SW)

    def test_workload_changes_digest(self):
        assert self.digest() != self.digest(cache_key="pagerank:KRON:13")

    def test_runner_params_change_digest(self):
        assert self.digest() != self.digest(
            runner_params={"max_sim_events": 10_000}
        )

    def test_machine_changes_digest(self):
        import dataclasses as dc

        hierarchy = dc.replace(DEFAULT_MACHINE.hierarchy, llc_ways=8)
        machine = dc.replace(DEFAULT_MACHINE, hierarchy=hierarchy)
        assert self.digest() != self.digest(machine=machine)

    def test_runner_digests_differ_across_machines(self, tmp_path, workload):
        """Two runners with different sim budgets must not share entries."""
        cache = ResultCache(tmp_path)
        a = Runner(max_sim_events=20_000, result_cache=cache)
        b = Runner(max_sim_events=10_000, result_cache=cache)
        a.run(workload, BASELINE)
        b.run(workload, BASELINE)
        assert len(cache) == 2
