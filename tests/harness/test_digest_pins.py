"""Digest-stability pins across the registry refactor.

The fixture ``data/digest_pins.json`` was captured from the pre-registry
``make_workload`` ladder: the machine digest plus the baseline and COBRA
``point_digest`` of all 23 canonical suite points at scale 13. The
registry must reproduce every byte — these digests are the persistent
result cache's keys and the identity golden entries are stored under, so
any drift silently invalidates every warm cache and golden pin on disk.

The pins cover the full identity pipeline: cache-key bytes
(``workload:input:scale``), the machine-config serialization, and the
runner digest parameters. They intentionally do *not* require running a
simulation — point digests are pure functions of the identity.
"""

import json
from pathlib import Path

import pytest

from repro.harness.runner import Runner
from repro.workloads.registry import resolve_point

PINS_PATH = Path(__file__).parent / "data" / "digest_pins.json"

PINS = json.loads(PINS_PATH.read_text(encoding="utf-8"))


@pytest.fixture(scope="module")
def runner():
    return Runner(result_cache=None)


class TestDigestPins:
    def test_fixture_covers_the_full_suite(self):
        assert len(PINS["points"]) == 23
        assert all(key.count(":") == 2 for key in PINS["points"])

    def test_machine_digest_unchanged(self, runner):
        assert runner.machine_digest() == PINS["machine"]

    @pytest.mark.parametrize("cache_key", sorted(PINS["points"]))
    def test_point_digests_unchanged(self, runner, cache_key):
        # The registry must resolve the pinned wire identity verbatim...
        workload = resolve_point(cache_key)
        assert workload.cache_key == cache_key
        # ...and feed run_digest the exact same bytes as the old ladder.
        for mode, pinned in PINS["points"][cache_key].items():
            assert runner.point_digest(workload.cache_key, mode) == pinned
