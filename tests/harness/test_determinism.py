"""Determinism: identical configurations must reproduce identical numbers.

Every experiment in this repository is exactly reproducible — inputs are
seeded, the simulators are deterministic, and branch sampling uses fixed
prefixes. Regressions here would make EXPERIMENTS.md unverifiable.
"""

import pytest

from repro.harness import BASELINE, COBRA, PB_SW, Runner
from repro.harness.inputs import make_workload

SCALE = 15


@pytest.fixture(scope="module")
def workload():
    return make_workload("degree-count", "KRON", scale=SCALE)


class TestRunnerDeterminism:
    @pytest.mark.parametrize("mode", [BASELINE, PB_SW, COBRA])
    def test_fresh_runners_agree_exactly(self, workload, mode):
        first = Runner(max_sim_events=30_000, des_sample=3_000).run(
            workload, mode
        )
        second = Runner(max_sim_events=30_000, des_sample=3_000).run(
            workload, mode
        )
        assert first.cycles == second.cycles
        assert first.instructions == second.instructions
        assert first.branch_mispredicts == second.branch_mispredicts
        for a, b in zip(first.phases, second.phases):
            assert a.irregular_service.as_dict() == b.irregular_service.as_dict()
            assert a.traffic.reads == b.traffic.reads
            assert a.traffic.writes == b.traffic.writes

    def test_inputs_are_seeded(self):
        a = make_workload("pagerank", "URND", scale=SCALE)
        b = make_workload("pagerank", "URND", scale=SCALE)
        assert a is b  # cached
        # And rebuilding from scratch gives the same stream.
        from repro.graphs import build_csr, uniform_random

        edges = uniform_random(1 << SCALE, (1 << SCALE) * 8, seed=303)
        assert (build_csr(edges).neighbors == a.graph.neighbors).all()

    def test_des_model_deterministic(self, workload):
        from repro.des import EvictionBufferModel, EvictionModelConfig

        config = EvictionModelConfig(
            num_indices=workload.num_indices,
            l1_buffers=16,
            l2_buffers=64,
            llc_buffers=512,
        )
        trace = workload.update_indices[:5_000]
        a = EvictionBufferModel(config).run(trace)
        b = EvictionBufferModel(config).run(trace)
        assert a.total_cycles == b.total_cycles
        assert a.core_stall_cycles == b.core_stall_cycles
        assert a.evictions == b.evictions
