"""Tests for the fault-tolerant sweep executor and fault injection."""

import pytest

from repro.harness import Runner
from repro.harness.faults import (
    FaultInjector,
    FaultPolicy,
    PointFailure,
    SweepOutcome,
    run_sweep_resilient,
)
from repro.harness.inputs import make_workload
from repro.harness.modes import BASELINE, PB_SW
from repro.harness.telemetry import JsonlTelemetry, read_events

SCALE = 13

#: Generous per-point budget: a healthy scale-13 point simulates in well
#: under a second; only an injected stall ever gets near this.
TIMEOUT = 30.0


@pytest.fixture(scope="module")
def points():
    graph = make_workload("degree-count", "KRON", scale=SCALE)
    sort = make_workload("integer-sort", "U16", scale=SCALE)
    return [(graph, BASELINE), (graph, PB_SW), (sort, BASELINE)]


@pytest.fixture(scope="module")
def serial_results(points):
    return Runner(max_sim_events=20_000).run_many(points)


def fresh_runner():
    return Runner(max_sim_events=20_000)


def kill_injector(points, index, state_dir):
    workload, mode = points[index]
    return FaultInjector(
        kill=frozenset({FaultInjector.token(workload.cache_key, mode)}),
        state_dir=str(state_dir),
    )


class TestRecovery:
    def test_clean_sweep_matches_serial(self, points, serial_results):
        outcome = run_sweep_resilient(
            fresh_runner(),
            points,
            jobs=2,
            policy=FaultPolicy(timeout=TIMEOUT),
            injector=FaultInjector(),  # nothing armed
        )
        assert outcome.ok
        assert outcome.results == serial_results

    def test_killed_worker_recovers_bit_identical(
        self, tmp_path, points, serial_results
    ):
        """A SIGKILLed worker mid-sweep must cost nothing but a retry:
        every point's counters arrive, in input order, bit-identical to
        the serial run."""
        telemetry = JsonlTelemetry(tmp_path / "t.jsonl")
        outcome = run_sweep_resilient(
            fresh_runner(),
            points,
            jobs=2,
            policy=FaultPolicy(timeout=TIMEOUT, retries=2, backoff=0.05),
            telemetry=telemetry,
            injector=kill_injector(points, 0, tmp_path / "state"),
        )
        assert outcome.ok
        assert outcome.completed == len(points)
        for expected, actual in zip(serial_results, outcome.results):
            assert actual == expected
        events = {e["event"] for e in read_events(telemetry.path)}
        assert "pool_rebuilt" in events
        assert "point_retried" in events
        assert "point_failed" not in events

    def test_stalled_worker_times_out_and_recovers(
        self, tmp_path, points, serial_results
    ):
        """A hung worker must be detected by the per-point timeout, the
        pool torn down, and the stalled point retried successfully."""
        workload, mode = points[1]
        injector = FaultInjector(
            stall=frozenset({FaultInjector.token(workload.cache_key, mode)}),
            stall_seconds=600.0,
            state_dir=str(tmp_path / "state"),
        )
        telemetry = JsonlTelemetry(tmp_path / "t.jsonl")
        outcome = run_sweep_resilient(
            fresh_runner(),
            points,
            jobs=2,
            policy=FaultPolicy(timeout=10.0, retries=2, backoff=0.05),
            telemetry=telemetry,
            injector=injector,
        )
        assert outcome.ok
        assert outcome.results == serial_results
        events = read_events(telemetry.path)
        reasons = [
            e.get("reason", "")
            for e in events
            if e["event"] == "point_retried"
        ]
        assert any("timeout" in reason for reason in reasons)

    def test_persistent_crash_is_a_structural_failure(
        self, points, serial_results
    ):
        """A point that kills its worker on *every* attempt must exhaust
        its retries into a PointFailure — not an exception — while the
        healthy points still complete."""
        injector = kill_injector(points, 0, state_dir="")  # fires always
        outcome = run_sweep_resilient(
            fresh_runner(),
            points,
            jobs=2,
            policy=FaultPolicy(
                timeout=TIMEOUT, retries=1, backoff=0.05, max_pool_rebuilds=5
            ),
            injector=injector,
        )
        assert not outcome.ok
        assert outcome.completed == len(points) - 1
        (failure,) = [
            f for f in outcome.failures if f.index == 0
        ]
        assert isinstance(failure, PointFailure)
        assert failure.point == points[0][0].cache_key
        assert failure.attempts == 2
        for index in (1, 2):
            assert outcome.results[index] == serial_results[index]

    def test_results_fold_back_into_memo(self, points):
        runner = fresh_runner()
        outcome = run_sweep_resilient(
            runner, points, jobs=2, injector=FaultInjector()
        )
        for (workload, mode), counters in zip(points, outcome.results):
            assert runner.run(workload, mode) is counters

    def test_serial_jobs_one_never_raises(self, points, serial_results):
        outcome = run_sweep_resilient(
            fresh_runner(), points, jobs=1, injector=FaultInjector()
        )
        assert outcome.ok
        assert outcome.results == serial_results

    def test_missing_cache_key_rejected(self):
        class Anonymous:
            name = "anon"

        with pytest.raises(ValueError, match="cache_key"):
            run_sweep_resilient(
                fresh_runner(), [(Anonymous(), BASELINE)], jobs=2
            )


class TestRunManyIntegration:
    def test_fault_policy_recomputes_failed_points_serially(
        self, monkeypatch, tmp_path, points, serial_results
    ):
        """run_many keeps its list contract under a fault policy: a point
        the pool can never complete (kill fires on every worker attempt)
        is recomputed in-process, where injection never fires."""
        workload, mode = points[0]
        monkeypatch.setenv(
            "REPRO_FAULT_INJECT",
            f"kill={FaultInjector.token(workload.cache_key, mode)}",
        )
        runner = Runner(
            max_sim_events=20_000,
            fault_policy=FaultPolicy(
                timeout=TIMEOUT, retries=0, backoff=0.05
            ),
        )
        results = runner.run_many(points, jobs=2)
        assert results == serial_results

    def test_fault_policy_clean_run_matches_plain_executor(
        self, points, serial_results
    ):
        runner = Runner(
            max_sim_events=20_000, fault_policy=FaultPolicy(timeout=TIMEOUT)
        )
        assert runner.run_many(points, jobs=2) == serial_results


class TestFaultInjector:
    def test_from_env_unset_is_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_INJECT", raising=False)
        assert FaultInjector.from_env() is None

    def test_from_env_parses_directives(self):
        injector = FaultInjector.from_env(
            {
                "REPRO_FAULT_INJECT": (
                    "kill=a:b:1|baseline,c:d:2|pb-sw;stall=e:f:3|cobra;"
                    "stall_seconds=7.5;state=/tmp/x"
                )
            }
        )
        assert injector.kill == {"a:b:1|baseline", "c:d:2|pb-sw"}
        assert injector.stall == {"e:f:3|cobra"}
        assert injector.stall_seconds == 7.5
        assert injector.state_dir == "/tmp/x"

    def test_from_env_rejects_unknown_directive(self):
        with pytest.raises(ValueError, match="directive"):
            FaultInjector.from_env({"REPRO_FAULT_INJECT": "explode=now"})

    def test_state_dir_arms_each_fault_once(self, tmp_path):
        injector = FaultInjector(state_dir=str(tmp_path))
        assert injector._arm("kill", "a:b:1|baseline")
        assert not injector._arm("kill", "a:b:1|baseline")
        assert injector._arm("stall", "a:b:1|baseline")  # distinct kind

    def test_outcome_accessors(self):
        outcome = SweepOutcome(
            results=[object(), None],
            failures=[
                PointFailure(
                    index=1, point="x:y:1", mode=BASELINE,
                    reason="boom", attempts=3,
                )
            ],
        )
        assert outcome.completed == 1
        assert not outcome.ok


class TestTornDirective:
    def test_from_env_parses_torn_journals(self):
        injector = FaultInjector.from_env(
            {"REPRO_FAULT_INJECT": "torn=jobs,other;state=/tmp/x"}
        )
        assert injector.torn == {"jobs", "other"}

    def test_maybe_tear_respects_arming(self, tmp_path):
        injector = FaultInjector(
            torn=frozenset({"jobs"}), state_dir=str(tmp_path)
        )
        assert injector.maybe_tear("jobs")
        assert not injector.maybe_tear("jobs")  # marker armed: fire once
        assert not injector.maybe_tear("unlisted")

    def test_maybe_tear_without_state_fires_every_time(self):
        injector = FaultInjector(torn=frozenset({"jobs"}))
        assert injector.maybe_tear("jobs")
        assert injector.maybe_tear("jobs")


class TestGracefulShutdown:
    def test_first_signal_latches_second_escalates(self):
        from repro.harness.faults import GracefulShutdown

        latch = GracefulShutdown()
        assert not latch.requested
        latch._handle(15, None)
        assert latch.requested
        assert latch.signum == 15
        # The drain wedged; the operator's second signal must break out.
        with pytest.raises(KeyboardInterrupt):
            latch._handle(15, None)
        # Still latched after the escalation.
        assert latch.requested

    def test_install_off_main_thread_is_a_noop(self):
        import threading

        from repro.harness.faults import GracefulShutdown

        latch = GracefulShutdown()
        seen = {}

        def run():
            latch.install()
            seen["previous"] = dict(latch._previous)

        thread = threading.Thread(target=run)
        thread.start()
        thread.join()
        assert seen["previous"] == {}  # no handlers touched
        latch.restore()  # harmless when nothing was installed
