"""Scale robustness: the paper's orderings hold across input scales.

The reproduction picks one default scale (DESIGN.md Section 5); these
tests check the qualitative conclusions are not an artifact of that choice
by sweeping the input scale while keeping the machine fixed. Below the
cache-fitting threshold blocking cannot help (there is nothing to
localize), which is itself part of the expected shape.
"""

import pytest

from repro.harness import BASELINE, COBRA, PB_SW, Runner
from repro.harness.inputs import make_workload


@pytest.fixture(scope="module")
def runner():
    return Runner(max_sim_events=40_000, des_sample=3_000)


class TestOrderingAcrossScales:
    @pytest.mark.parametrize("scale", [16, 17])
    def test_cobra_beats_pb_beats_baseline(self, runner, scale):
        workload = make_workload("degree-count", "KRON", scale=scale)
        base = runner.run(workload, BASELINE).cycles
        pb = runner.run(workload, PB_SW).cycles
        cobra = runner.run(workload, COBRA).cycles
        assert base > pb > cobra, f"ordering broke at scale {scale}"

    def test_gains_grow_with_working_set(self, runner):
        """Bigger irregular working sets leave more for blocking to
        recover: PB's speedup at scale 17 exceeds its speedup at 15."""

        def pb_speedup(scale):
            workload = make_workload("degree-count", "KRON", scale=scale)
            base = runner.run(workload, BASELINE).cycles
            return base / runner.run(workload, PB_SW).cycles

        assert pb_speedup(17) > pb_speedup(15)

    def test_cache_resident_inputs_gain_nothing(self, runner):
        """At scale 12 the 16 KB working set sits in the LLC: the baseline
        is already local and PB's binning tax has nothing to recover."""
        workload = make_workload("degree-count", "KRON", scale=12)
        base = runner.run(workload, BASELINE).cycles
        pb = runner.run(workload, PB_SW).cycles
        assert base / pb < 1.2

    def test_cobra_over_pb_stable_across_scales(self, runner):
        """COBRA's gain over PB comes from Binning mechanics, not working-
        set size, so the ratio stays in a narrow band."""
        ratios = []
        for scale in (16, 17):
            workload = make_workload("degree-count", "KRON", scale=scale)
            pb = runner.run(workload, PB_SW).cycles
            cobra = runner.run(workload, COBRA).cycles
            ratios.append(pb / cobra)
        assert max(ratios) / min(ratios) < 1.3
