"""Tests for the parallel sweep executor and engine selection."""

import dataclasses

import numpy as np
import pytest

from repro.cache.coherence import DirectoryMESI
from repro.harness import Runner
from repro.harness.inputs import make_workload
from repro.harness.machine import DEFAULT_MACHINE
from repro.harness.modes import BASELINE, CHARACTERIZATION, COBRA, PB_SW
from repro.harness.parallel import ParallelModel, run_sweep

SCALE = 13

BATCHABLE_MACHINE = dataclasses.replace(
    DEFAULT_MACHINE,
    hierarchy=dataclasses.replace(
        DEFAULT_MACHINE.hierarchy, prefetch=False, llc_policy="plru"
    ),
)


@pytest.fixture(scope="module")
def points():
    graph = make_workload("degree-count", "KRON", scale=SCALE)
    sort = make_workload("integer-sort", "U16", scale=SCALE)
    return [
        (graph, BASELINE),
        (graph, PB_SW),
        (graph, CHARACTERIZATION),
        (sort, BASELINE),
        (sort, COBRA),
    ]


class TestRunMany:
    def test_serial_matches_parallel(self, points):
        """The process-pool path must return the exact serial results, in
        input order (workers rebuild workloads from cache keys)."""
        serial = Runner(max_sim_events=20_000).run_many(points)
        parallel = Runner(max_sim_events=20_000).run_many(points, jobs=2)
        assert len(parallel) == len(points)
        for expected, actual in zip(serial, parallel):
            assert actual == expected

    def test_results_fold_back_into_memo(self, points):
        runner = Runner(max_sim_events=20_000)
        results = runner.run_many(points[:2], jobs=2)
        # A subsequent serial run must be a memo hit (identical object).
        assert runner.run(*points[0]) is results[0]
        assert runner.run(*points[1]) is results[1]

    def test_jobs_one_is_serial(self, points):
        runner = Runner(max_sim_events=20_000)
        results = runner.run_many(points[:2], jobs=1)
        assert [r.mode for r in results] == [points[0][1], points[1][1]]

    def test_sweep_requires_cache_keys(self):
        runner = Runner(max_sim_events=20_000)
        workload = make_workload("degree-count", "KRON", scale=SCALE)

        class Anonymous:
            name = "anon"

            def __getattr__(self, item):
                if item == "cache_key":
                    raise AttributeError(item)
                return getattr(workload, item)

        with pytest.raises(ValueError, match="cache_key"):
            run_sweep(runner, [(Anonymous(), BASELINE)], jobs=2)

    def test_spawn_spec_roundtrip(self):
        runner = Runner(
            machine=BATCHABLE_MACHINE, max_sim_events=12_345, engine="batch"
        )
        clone = Runner.from_spec(runner.spawn_spec())
        assert clone.machine == runner.machine
        assert clone.max_sim_events == 12_345
        assert clone.engine == "batch"
        assert clone.result_cache is None


class TestPoolSizing:
    def _forbid_pools(self, monkeypatch):
        from repro.harness import parallel

        def explode(*args, **kwargs):
            raise AssertionError("a process pool must not be built")

        monkeypatch.setattr(parallel, "ProcessPoolExecutor", explode)

    def test_empty_points_short_circuit(self, monkeypatch):
        """An empty sweep returns [] without touching the pool machinery."""
        self._forbid_pools(monkeypatch)
        runner = Runner(max_sim_events=20_000)
        assert run_sweep(runner, [], jobs=8) == []
        assert runner.run_many([], jobs=8) == []

    def test_jobs_clamped_to_point_count(self, monkeypatch, points):
        """jobs > len(points) must never build an oversized pool."""
        from concurrent.futures import ProcessPoolExecutor

        from repro.harness import parallel

        seen = []

        class CountingPool(ProcessPoolExecutor):
            def __init__(self, max_workers=None, **kwargs):
                seen.append(max_workers)
                super().__init__(max_workers=max_workers, **kwargs)

        monkeypatch.setattr(parallel, "ProcessPoolExecutor", CountingPool)
        serial = Runner(max_sim_events=20_000).run_many(points[:2])
        results = run_sweep(
            Runner(max_sim_events=20_000), points[:2], jobs=16
        )
        assert seen == [2]
        assert results == serial

    def test_single_point_sweep_runs_in_process(self, monkeypatch, points):
        """One point with many jobs clamps to the serial path: no pool."""
        self._forbid_pools(monkeypatch)
        runner = Runner(max_sim_events=20_000)
        (result,) = run_sweep(runner, points[:1], jobs=8)
        assert result.mode == points[0][1]

    def test_checkpoint_splices_and_journals(self, tmp_path, points):
        """run_sweep with a checkpoint must skip journaled points and
        journal the rest."""
        from repro.harness.checkpoint import SweepCheckpoint

        serial = Runner(max_sim_events=20_000).run_many(points)
        runner = Runner(max_sim_events=20_000)
        checkpoint = SweepCheckpoint.attach(tmp_path, runner, points)
        checkpoint.record(0, serial[0])
        checkpoint.record(3, serial[3])
        results = run_sweep(runner, points, jobs=2, checkpoint=checkpoint)
        assert results == serial
        assert sorted(checkpoint.completed_counters()) == [0, 1, 2, 3, 4]
        assert checkpoint.status == "completed"


class TestEngineSelection:
    def test_engines_agree_end_to_end(self):
        """Full-pipeline equivalence: the batched and scalar engines must
        produce identical phase counters on a batchable machine."""
        workload = make_workload("degree-count", "KRON", scale=SCALE)
        fast = Runner(
            machine=BATCHABLE_MACHINE, max_sim_events=20_000, engine="fast"
        )
        batch = Runner(
            machine=BATCHABLE_MACHINE, max_sim_events=20_000, engine="batch"
        )
        for mode in (BASELINE, PB_SW, COBRA):
            assert batch.run(workload, mode) == fast.run(workload, mode)

    def test_batch_engine_rejects_unbatchable_machine(self):
        unbatchable = dataclasses.replace(
            DEFAULT_MACHINE,
            hierarchy=dataclasses.replace(
                DEFAULT_MACHINE.hierarchy, llc_policy="random"
            ),
        )
        with pytest.raises(ValueError, match="batch"):
            Runner(machine=unbatchable, engine="batch")

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            Runner(engine="warp")

    def test_auto_on_default_machine_uses_batch(self):
        """The default machine (DRRIP LLC + prefetch) is batchable now that
        the kernels cover set dueling and prefetch gating."""
        from repro.cache.batchsim import BatchHierarchy

        runner = Runner()
        hierarchy = runner._make_hierarchy(runner.machine.hierarchy)
        assert isinstance(hierarchy, BatchHierarchy)

    def test_auto_emits_scalar_fallback_telemetry(self, tmp_path, monkeypatch):
        """A config the batched engine rejects degrades to the scalar
        engine and reports why. Every shipped policy is batchable now, so
        the rejection is simulated — the path guards future policies."""
        from repro.cache.batchsim import BatchHierarchy
        from repro.cache.fastsim import FastHierarchy
        from repro.harness.telemetry import JsonlTelemetry, read_events

        monkeypatch.setattr(
            BatchHierarchy,
            "reject_reason",
            staticmethod(lambda config: "unknown llc replacement policy"),
        )
        sink = JsonlTelemetry(tmp_path / "t.jsonl")
        runner = Runner(telemetry=sink)
        hierarchy = runner._make_hierarchy(runner.machine.hierarchy)
        sink.close()
        assert isinstance(hierarchy, FastHierarchy)
        fallbacks = [
            e
            for e in read_events(tmp_path / "t.jsonl")
            if e["event"] == "scalar_fallback"
        ]
        assert len(fallbacks) == 1
        assert "policy" in fallbacks[0]["reason"]

    def test_auto_on_batchable_machine_uses_batch(self):
        from repro.cache.batchsim import BatchHierarchy

        runner = Runner(machine=BATCHABLE_MACHINE)
        hierarchy = runner._make_hierarchy(runner.machine.hierarchy)
        assert isinstance(hierarchy, BatchHierarchy)


class TestInvalidationRate:
    def test_closed_form_matches_directory_replay(self):
        """The vectorized invalidation count must equal feeding the MESI
        directory the same round-robin write stream."""
        rng = np.random.default_rng(42)
        indices = rng.integers(0, 4096, size=20_000)
        workload = type(
            "W", (), {"update_indices": indices, "num_updates": indices.size}
        )()
        model = ParallelModel(Runner(), coherence_sample=20_000)
        for num_cores in (2, 4, 16):
            rate = model.invalidation_rate(workload, num_cores)
            directory = DirectoryMESI(num_cores)
            for position, line in enumerate((indices // 16).tolist()):
                directory.write(position % num_cores, line)
            assert rate == directory.stats.invalidations / indices.size
