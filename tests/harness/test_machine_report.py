"""Tests for the machine config and report formatting."""

import pytest

from repro.harness import (
    DEFAULT_MACHINE,
    format_series,
    format_table,
    geomean,
    speedup,
)


class TestMachineConfig:
    def test_default_matches_design(self):
        machine = DEFAULT_MACHINE
        assert machine.hierarchy.l1_bytes == 2 * 1024
        assert machine.hierarchy.llc_bytes == 128 * 1024
        assert machine.core.issue_width == 4

    def test_cobra_config_threads_hierarchy(self):
        cobra = DEFAULT_MACHINE.cobra_config(1 << 16, 8)
        assert cobra.hierarchy is DEFAULT_MACHINE.hierarchy
        assert cobra.num_indices == 1 << 16

    def test_cobra_config_llc_override(self):
        cobra = DEFAULT_MACHINE.cobra_config(1 << 16, 8, llc_reserved=4)
        assert cobra.llc_reserved_ways == 4

    def test_stream_scale_full_without_reservation(self):
        assert DEFAULT_MACHINE.stream_bandwidth_scale(None) == 1.0

    def test_stream_scale_full_with_one_l2_way_reserved(self):
        # The default COBRA reservation (1 L2 way) leaves enough for the
        # prefetcher.
        assert DEFAULT_MACHINE.stream_bandwidth_scale((7, 1, 15)) == 1.0

    def test_stream_scale_derates_when_l2_starved(self):
        scale = DEFAULT_MACHINE.stream_bandwidth_scale((7, 7, 15))
        assert scale < 1.0
        assert scale >= DEFAULT_MACHINE.stream_derate_floor

    def test_with_core(self):
        machine = DEFAULT_MACHINE.with_core(mlp_irregular=2.0)
        assert machine.core.mlp_irregular == 2.0
        assert DEFAULT_MACHINE.core.mlp_irregular != 2.0


class TestReport:
    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)

    def test_geomean_empty(self):
        assert geomean([]) == 0.0

    def test_geomean_skips_nonpositive(self):
        assert geomean([4.0, 0.0, -1.0]) == pytest.approx(4.0)

    def test_speedup(self):
        assert speedup(100, 50) == 2.0
        assert speedup(100, 0) == float("inf")

    def test_format_table_aligns(self):
        text = format_table(
            ["name", "value"], [["a", 1.5], ["longer", 22.25]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "1.50" in text
        assert "22.25" in text
        # All data lines share the header width.
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1

    def test_format_table_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text

    def test_format_series(self):
        text = format_series("S", [1, 2], [0.5, 0.25], "x", "y")
        assert "0.500" in text
        assert text.startswith("S")
