"""Tests for the JSONL run-telemetry layer."""

import json
import pickle

import pytest

from repro.harness import Runner
from repro.harness.inputs import make_workload
from repro.harness.modes import BASELINE
from repro.harness.resultcache import ResultCache
from repro.harness.telemetry import (
    NULL_TELEMETRY,
    JsonlTelemetry,
    Telemetry,
    format_summary,
    read_events,
    summarize,
)

SCALE = 13


class TestNullSink:
    def test_default_is_disabled_noop(self, tmp_path):
        assert NULL_TELEMETRY.enabled is False
        NULL_TELEMETRY.emit("anything", free="form")  # must not raise
        NULL_TELEMETRY.close()
        assert list(tmp_path.iterdir()) == []

    def test_runner_defaults_to_null(self):
        assert Runner().telemetry is NULL_TELEMETRY


class TestJsonlSink:
    def test_events_append_as_json_lines(self, tmp_path):
        sink = JsonlTelemetry(tmp_path / "t.jsonl")
        sink.emit("sweep_started", points=3, jobs=2)
        sink.emit("point_completed", point="a:b:1", seconds=0.5)
        sink.close()
        lines = (tmp_path / "t.jsonl").read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["event"] == "sweep_started"
        assert first["points"] == 3
        assert "ts" in first and "pid" in first

    def test_reopen_appends(self, tmp_path):
        path = tmp_path / "t.jsonl"
        JsonlTelemetry(path).emit("a")
        JsonlTelemetry(path).emit("b")
        assert [e["event"] for e in read_events(path)] == ["a", "b"]

    def test_flush_and_close_are_idempotent(self, tmp_path):
        sink = JsonlTelemetry(tmp_path / "t.jsonl")
        sink.flush()  # nothing open yet: no-op
        sink.emit("a")
        sink.flush()
        sink.close()
        sink.close()  # second close must not double-close the fd
        sink.emit("b")  # emitting after close reopens by path
        sink.close()
        assert [e["event"] for e in read_events(sink.path)] == ["a", "b"]
        NULL_TELEMETRY.flush()  # part of the base interface

    def test_atexit_persists_final_events(self, tmp_path):
        """A process that exits without closing its sink must still leave
        every event on disk (the atexit hook flushes and closes)."""
        import os
        import subprocess
        import sys

        path = tmp_path / "t.jsonl"
        script = (
            "import sys\n"
            "from repro.harness.telemetry import JsonlTelemetry\n"
            f"sink = JsonlTelemetry({str(path)!r})\n"
            "sink.emit('last_words', detail='unclosed')\n"
            "sys.exit(0)\n"
        )
        env = {
            **os.environ,
            "PYTHONPATH": os.pathsep.join(p for p in sys.path if p),
        }
        proc = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        assert [e["event"] for e in read_events(path)] == ["last_words"]

    def test_pickles_by_path(self, tmp_path):
        sink = JsonlTelemetry(tmp_path / "t.jsonl")
        sink.emit("before")
        clone = pickle.loads(pickle.dumps(sink))
        clone.emit("after")
        assert [e["event"] for e in read_events(sink.path)] == [
            "before",
            "after",
        ]

    def test_read_events_skips_torn_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlTelemetry(path)
        sink.emit("good")
        with open(path, "a") as handle:
            handle.write('{"event": "torn", "ts": 1.')  # crashed mid-write
        assert [e["event"] for e in read_events(path)] == ["good"]


class TestRunnerWiring:
    def test_run_emits_phase_and_engine_events(self, tmp_path):
        workload = make_workload("degree-count", "KRON", scale=SCALE)
        sink = JsonlTelemetry(tmp_path / "t.jsonl")
        runner = Runner(max_sim_events=20_000, telemetry=sink)
        runner.run(workload, BASELINE)
        events = read_events(sink.path)
        kinds = {e["event"] for e in events}
        assert "phase_timed" in kinds
        assert "engine_selected" in kinds
        timed = [e for e in events if e["event"] == "phase_timed"]
        assert all(e["seconds"] >= 0.0 for e in timed)
        assert all(e["workload"] == workload.name for e in timed)
        # Timed events carry the monotonic duration_s (with the legacy
        # seconds alias mirroring it exactly).
        assert all(e["duration_s"] == e["seconds"] for e in timed)

    def test_cache_hits_and_misses_logged(self, tmp_path):
        workload = make_workload("degree-count", "KRON", scale=SCALE)
        sink = JsonlTelemetry(tmp_path / "t.jsonl")
        cache = ResultCache(tmp_path / "cache")
        Runner(
            max_sim_events=20_000, result_cache=cache, telemetry=sink
        ).run(workload, BASELINE)
        Runner(
            max_sim_events=20_000,
            result_cache=ResultCache(tmp_path / "cache"),
            telemetry=sink,
        ).run(workload, BASELINE)
        events = [e["event"] for e in read_events(sink.path)]
        assert events.count("cache_miss") == 1  # cold first run
        assert events.count("cache_hit") == 1  # warm second run

    def test_spawn_spec_carries_telemetry_path(self, tmp_path):
        sink = JsonlTelemetry(tmp_path / "t.jsonl")
        runner = Runner(telemetry=sink)
        clone = Runner.from_spec(runner.spawn_spec())
        assert clone.telemetry.path == sink.path

    def test_spawn_spec_without_telemetry_roundtrips(self):
        clone = Runner.from_spec(Runner().spawn_spec())
        assert clone.telemetry is NULL_TELEMETRY


class TestSummary:
    def make_log(self, tmp_path):
        sink = JsonlTelemetry(tmp_path / "t.jsonl")
        sink.emit("sweep_started", points=3, jobs=2, timeout=None, retries=2)
        sink.emit("point_scheduled", point="a:b:1", mode="baseline", attempt=1)
        sink.emit(
            "point_completed",
            point="a:b:1", mode="baseline", attempt=1, seconds=2.0,
        )
        sink.emit(
            "point_retried",
            point="c:d:1", mode="pb-sw", attempt=1, reason="worker crashed",
            delay=0.25,
        )
        sink.emit(
            "point_completed",
            point="c:d:1", mode="pb-sw", attempt=2, seconds=5.0,
        )
        sink.emit(
            "point_failed",
            point="e:f:1", mode="cobra", attempts=3, reason="timeout",
        )
        sink.emit("cache_hit", digest="x")
        sink.emit("cache_miss", digest="y")
        sink.emit("cache_miss", digest="z")
        sink.emit("phase_timed", phase="binning", seconds=1.5)
        sink.emit("phase_timed", phase="binning", seconds=0.5)
        sink.emit("engine_selected", engine="batch")
        sink.emit("sweep_completed", completed=2, failed=1, seconds=9.0)
        return sink.path

    def test_summarize_aggregates(self, tmp_path):
        summary = summarize(self.make_log(tmp_path))
        assert summary["sweeps"] == 1
        assert summary["completed"] == 2
        assert summary["failed"] == 1
        assert summary["total_retries"] == 1
        assert summary["retried_points"] == 1
        assert summary["slowest"][0]["point"] == "c:d:1"
        assert summary["slowest"][0]["seconds"] == 5.0
        assert summary["cache"]["hit_rate"] == pytest.approx(1 / 3)
        assert summary["phase_seconds"]["binning"] == pytest.approx(2.0)
        assert summary["engines"] == {"batch": 1}

    def test_summarize_respects_slowest_limit(self, tmp_path):
        summary = summarize(self.make_log(tmp_path), slowest=1)
        assert len(summary["slowest"]) == 1

    def test_format_summary_mentions_everything(self, tmp_path):
        text = format_summary(summarize(self.make_log(tmp_path)))
        assert "Slowest points" in text
        assert "Failed points" in text
        assert "c:d:1" in text
        assert "timeout" in text
        assert "hit rate 33.3%" in text

    def test_format_summary_of_empty_log(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        text = format_summary(summarize(path))
        assert "completed 0" in text

    def test_emit_timed_carries_duration_and_alias(self, tmp_path):
        sink = JsonlTelemetry(tmp_path / "t.jsonl")
        sink.emit_timed("phase_timed", 1.25, phase="binning")
        sink.close()
        (event,) = read_events(sink.path)
        assert event["duration_s"] == 1.25
        assert event["seconds"] == 1.25  # legacy alias for old consumers

    def test_summarize_prefers_duration_s(self, tmp_path):
        sink = JsonlTelemetry(tmp_path / "t.jsonl")
        # A modern event where the fields disagree (should never happen,
        # but the monotonic duration must win) and a legacy one without
        # duration_s at all.
        sink.emit("phase_timed", phase="binning", duration_s=2.0, seconds=9.0)
        sink.emit("phase_timed", phase="binning", seconds=0.5)
        sink.emit(
            "point_completed",
            point="a:b:1", mode="baseline", duration_s=3.0, seconds=99.0,
        )
        sink.close()
        summary = summarize(sink.path)
        assert summary["phase_seconds"]["binning"] == pytest.approx(2.5)
        assert summary["slowest"][0]["seconds"] == 3.0

    def test_custom_sink_subclass_contract(self):
        class Collect(Telemetry):
            enabled = True

            def __init__(self):
                self.events = []

            def emit(self, event, **fields):
                self.events.append((event, fields))

        sink = Collect()
        runner = Runner(max_sim_events=20_000, telemetry=sink)
        runner._make_hierarchy(runner.machine.hierarchy)
        assert sink.events and sink.events[0][0] == "engine_selected"
