"""Tests for sweep checkpoint/resume, graceful shutdown, and heartbeats."""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.harness import Runner
from repro.harness.checkpoint import (
    STATUS_COMPLETED,
    STATUS_INTERRUPTED,
    STATUS_RUNNING,
    SweepCheckpoint,
    _atomic_write_json,
    content_id,
    format_runs,
    list_runs,
)
from repro.harness.faults import (
    FaultInjector,
    FaultPolicy,
    SweepInterrupted,
    run_sweep_resilient,
)
from repro.harness.inputs import make_workload
from repro.harness.modes import BASELINE, PB_SW
from repro.harness.telemetry import JsonlTelemetry, read_events

SCALE = 13


@pytest.fixture(scope="module")
def points():
    graph = make_workload("degree-count", "KRON", scale=SCALE)
    sort = make_workload("integer-sort", "U16", scale=SCALE)
    return [(graph, BASELINE), (graph, PB_SW), (sort, BASELINE)]


@pytest.fixture(scope="module")
def serial_results(points):
    return Runner(max_sim_events=20_000).run_many(points)


def fresh_runner():
    return Runner(max_sim_events=20_000)


class RecordingTelemetry:
    enabled = True

    def __init__(self):
        self.events = []

    def emit(self, event, **fields):
        self.events.append({"event": event, **fields})

    def emit_timed(self, event, duration_s, **fields):
        self.emit(
            event,
            duration_s=float(duration_s),
            seconds=float(duration_s),
            **fields,
        )

    def of(self, name):
        return [e for e in self.events if e["event"] == name]

    def flush(self):
        pass

    def close(self):
        pass


class TestContentId:
    def test_stable_and_key_order_independent(self):
        one = content_id({"a": 1, "b": [2, 3]})
        assert content_id({"b": [2, 3], "a": 1}) == one
        assert content_id({"a": 1, "b": [2, 4]}) != one
        assert len(one) == 12
        assert len(content_id({"a": 1}, length=16)) == 16


class TestAtomicWriteDurability:
    def test_fsync_before_rename(self, tmp_path, monkeypatch):
        """The temp file must be fsync'd before the rename publishes it,
        or a power loss can leave the *renamed* file empty."""
        order = []
        real_fsync, real_replace = os.fsync, os.replace
        monkeypatch.setattr(
            os, "fsync", lambda fd: (order.append("fsync"), real_fsync(fd))
        )
        monkeypatch.setattr(
            os,
            "replace",
            lambda a, b: (order.append("replace"), real_replace(a, b)),
        )
        target = tmp_path / "status.json"
        _atomic_write_json(target, {"a": 1})
        assert order == ["fsync", "replace"]
        assert json.loads(target.read_text("utf-8")) == {"a": 1}

    def test_tracestore_install_fsyncs(self, tmp_path, monkeypatch):
        """The trace store's publish path shares the same discipline."""
        import numpy as np

        from repro.harness.tracestore import TraceStore

        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd))
        )
        store = TraceStore(tmp_path)
        store.materialize([np.arange(4, dtype=np.int64)], [False])
        # The lines and writes blobs plus the meta JSON each fsync.
        assert len(synced) >= 3


class TestJournal:
    def test_roundtrip_bit_identical(self, tmp_path, points, serial_results):
        runner = fresh_runner()
        checkpoint = SweepCheckpoint.attach(tmp_path, runner, points)
        for index, counters in enumerate(serial_results):
            checkpoint.record(index, counters)
        checkpoint.close()

        reloaded = SweepCheckpoint.load(tmp_path, checkpoint.run_id)
        completed = reloaded.completed_counters()
        assert sorted(completed) == [0, 1, 2]
        for index, expected in enumerate(serial_results):
            assert completed[index] == expected

    def test_attach_is_content_addressed(self, tmp_path, points):
        first = SweepCheckpoint.attach(tmp_path, fresh_runner(), points)
        again = SweepCheckpoint.attach(tmp_path, fresh_runner(), points)
        assert again.run_id == first.run_id
        assert again.run_dir == first.run_dir

        other_config = SweepCheckpoint.attach(
            tmp_path, Runner(max_sim_events=10_000), points
        )
        assert other_config.run_id != first.run_id
        other_points = SweepCheckpoint.attach(
            tmp_path, fresh_runner(), points[:2]
        )
        assert other_points.run_id != first.run_id

    def test_corrupt_lines_skipped_with_warning(
        self, tmp_path, points, serial_results
    ):
        runner = fresh_runner()
        checkpoint = SweepCheckpoint.attach(tmp_path, runner, points)
        checkpoint.record(0, serial_results[0])
        checkpoint.record(1, serial_results[1])
        checkpoint.close()

        journal = checkpoint.run_dir / "journal.jsonl"
        good = journal.read_text("utf-8").splitlines()
        bad_index = json.loads(good[0])
        bad_index["index"] = 99
        bad_digest = json.loads(good[1])
        bad_digest["digest"] = "0" * 64
        journal.write_text(
            "\n".join(
                [
                    good[0],
                    "not json at all",
                    json.dumps(bad_index),
                    json.dumps(bad_digest),
                    good[1][: len(good[1]) // 2],  # torn final write
                ]
            )
            + "\n",
            "utf-8",
        )

        telemetry = RecordingTelemetry()
        reloaded = SweepCheckpoint.load(tmp_path, checkpoint.run_id, telemetry)
        completed = reloaded.completed_counters()
        assert sorted(completed) == [0]
        assert completed[0] == serial_results[0]
        assert len(telemetry.of("journal_corrupt")) == 4

    def test_verify_detects_config_change(self, tmp_path, points):
        checkpoint = SweepCheckpoint.attach(tmp_path, fresh_runner(), points)
        checkpoint.verify(fresh_runner())  # same config: fine
        with pytest.raises(ValueError, match="digest mismatch"):
            checkpoint.verify(Runner(max_sim_events=10_000))

    def test_points_rebuilds_workloads(self, tmp_path, points):
        checkpoint = SweepCheckpoint.attach(tmp_path, fresh_runner(), points)
        rebuilt = checkpoint.points()
        assert [
            (w.cache_key, mode) for w, mode in rebuilt
        ] == [(w.cache_key, mode) for w, mode in points]

    def test_load_missing_run_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no checkpointed run"):
            SweepCheckpoint.load(tmp_path, "deadbeef0000")

    def test_missing_cache_key_rejected(self, tmp_path):
        class Anonymous:
            name = "anon"

        with pytest.raises(ValueError, match="cache_key"):
            SweepCheckpoint.attach(
                tmp_path, fresh_runner(), [(Anonymous(), BASELINE)]
            )


class TestResume:
    def test_resume_runs_only_pending_points(
        self, tmp_path, points, serial_results
    ):
        """Journaled points must be spliced back bit-identically; only the
        missing point may be scheduled."""
        runner = fresh_runner()
        telemetry = RecordingTelemetry()
        checkpoint = SweepCheckpoint.attach(
            tmp_path, runner, points, telemetry=telemetry
        )
        checkpoint.record(0, serial_results[0])
        checkpoint.record(2, serial_results[2])

        outcome = run_sweep_resilient(
            runner,
            points,
            jobs=2,
            telemetry=telemetry,
            injector=FaultInjector(),
            checkpoint=checkpoint,
        )
        assert outcome.ok
        assert outcome.run_id == checkpoint.run_id
        for expected, actual in zip(serial_results, outcome.results):
            assert actual == expected
        (restored,) = telemetry.of("points_restored")
        assert restored["restored"] == 2
        scheduled = {e["point"] for e in telemetry.of("point_scheduled")}
        assert scheduled == {points[1][0].cache_key}
        assert checkpoint.status == STATUS_COMPLETED
        assert sorted(checkpoint.completed_counters()) == [0, 1, 2]

    def test_run_many_journals_and_matches_serial(
        self, tmp_path, points, serial_results
    ):
        runner = fresh_runner()
        checkpoint = SweepCheckpoint.attach(tmp_path, runner, points)
        results = runner.run_many(points, jobs=2, checkpoint=checkpoint)
        assert results == serial_results
        assert sorted(checkpoint.completed_counters()) == [0, 1, 2]
        assert checkpoint.status == STATUS_COMPLETED

    def test_serial_checkpointed_sweep_journals(
        self, tmp_path, points, serial_results
    ):
        runner = fresh_runner()
        checkpoint = SweepCheckpoint.attach(tmp_path, runner, points)
        results = runner.run_many(points, jobs=1, checkpoint=checkpoint)
        assert results == serial_results
        assert sorted(checkpoint.completed_counters()) == [0, 1, 2]


class _FakeShutdown:
    """Pre-latched shutdown: the sweep sees the signal before point one."""

    def __init__(self):
        self.requested = True
        self.signum = signal.SIGTERM


class TestGracefulShutdown:
    def test_pre_latched_shutdown_interrupts_serial_sweep(
        self, tmp_path, points
    ):
        runner = fresh_runner()
        telemetry = RecordingTelemetry()
        checkpoint = SweepCheckpoint.attach(
            tmp_path, runner, points, telemetry=telemetry
        )
        outcome = run_sweep_resilient(
            runner,
            points,
            jobs=1,
            telemetry=telemetry,
            injector=FaultInjector(),
            checkpoint=checkpoint,
            shutdown=_FakeShutdown(),
        )
        assert outcome.interrupted
        assert not outcome.ok
        assert outcome.completed == 0
        assert checkpoint.status == STATUS_INTERRUPTED
        assert telemetry.of("sweep_interrupted")

    def test_run_many_raises_sweep_interrupted(self, tmp_path, points):
        runner = fresh_runner()
        checkpoint = SweepCheckpoint.attach(tmp_path, runner, points)
        from repro.harness import faults

        original = faults.run_sweep_resilient

        def pre_latched(*args, **kwargs):
            kwargs["shutdown"] = _FakeShutdown()
            return original(*args, **kwargs)

        faults_run = faults.run_sweep_resilient
        try:
            faults.run_sweep_resilient = pre_latched
            with pytest.raises(SweepInterrupted, match="repro resume"):
                runner.run_many(points, jobs=1, checkpoint=checkpoint)
        finally:
            faults.run_sweep_resilient = faults_run


_CHILD_SCRIPT = """
import sys

from repro.harness import Runner
from repro.harness.checkpoint import SweepCheckpoint
from repro.harness.faults import (
    FaultInjector,
    FaultPolicy,
    run_sweep_resilient,
)
from repro.harness.inputs import make_workload
from repro.harness.modes import BASELINE, PB_SW
from repro.harness.telemetry import JsonlTelemetry

root, telemetry_path, state_dir = sys.argv[1:4]
graph = make_workload("degree-count", "KRON", scale={scale})
sort = make_workload("integer-sort", "U16", scale={scale})
points = [(graph, BASELINE), (graph, PB_SW), (sort, BASELINE)]
runner = Runner(max_sim_events=20_000)
telemetry = JsonlTelemetry(telemetry_path)
runner.telemetry = telemetry
checkpoint = SweepCheckpoint.attach(
    root, runner, points, label="signal-test", telemetry=telemetry
)
injector = FaultInjector(
    stall=frozenset({{FaultInjector.token(sort.cache_key, BASELINE)}}),
    stall_seconds=600.0,
    state_dir=state_dir,
)
outcome = run_sweep_resilient(
    runner,
    points,
    jobs=2,
    policy=FaultPolicy(timeout=600.0, retries=0, drain_seconds=0.2),
    telemetry=telemetry,
    injector=injector,
    checkpoint=checkpoint,
    handle_signals=True,
)
sys.exit(130 if outcome.interrupted else 0)
"""


def _spawn_stalling_sweep(tmp_path):
    """Start a subprocess sweep whose third point stalls forever."""
    script = tmp_path / "child.py"
    script.write_text(_CHILD_SCRIPT.format(scale=SCALE), "utf-8")
    root = tmp_path / "runs"
    telemetry_path = tmp_path / "child-telemetry.jsonl"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    env.pop("REPRO_FAULT_INJECT", None)
    child = subprocess.Popen(
        [
            sys.executable,
            str(script),
            str(root),
            str(telemetry_path),
            str(tmp_path / "state"),
        ],
        env=env,
    )
    return child, root


def _wait_for_journal(root, lines, deadline=120.0):
    """Block until some run journal under ``root`` has ``lines`` entries."""
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        for journal in root.glob("*/journal.jsonl"):
            count = len(journal.read_text("utf-8").splitlines())
            if count >= lines:
                return journal.parent.name
        time.sleep(0.05)
    raise AssertionError(f"no journal reached {lines} lines in {deadline}s")


@pytest.mark.slow
class TestKilledParent:
    def _resume_and_check(self, root, run_id, points, serial_results):
        """Resume a killed run; only the stalled point may be re-run."""
        runner = fresh_runner()
        telemetry = RecordingTelemetry()
        checkpoint = SweepCheckpoint.load(root, run_id, telemetry=telemetry)
        checkpoint.verify(runner)
        assert [
            (w.cache_key, m) for w, m in checkpoint.points()
        ] == [(w.cache_key, m) for w, m in points]
        outcome = run_sweep_resilient(
            runner,
            points,
            jobs=2,
            telemetry=telemetry,
            injector=FaultInjector(),
            checkpoint=checkpoint,
        )
        assert outcome.ok
        for expected, actual in zip(serial_results, outcome.results):
            assert actual == expected
        scheduled = {e["point"] for e in telemetry.of("point_scheduled")}
        assert scheduled == {points[2][0].cache_key}
        assert checkpoint.status == STATUS_COMPLETED

    def test_sigterm_drains_and_resume_completes(
        self, tmp_path, points, serial_results
    ):
        child, root = _spawn_stalling_sweep(tmp_path)
        try:
            run_id = _wait_for_journal(root, lines=2)
            child.send_signal(signal.SIGTERM)
            assert child.wait(timeout=60) == 130
        finally:
            if child.poll() is None:
                child.kill()
                child.wait()
        checkpoint = SweepCheckpoint.load(root, run_id)
        assert checkpoint.status == STATUS_INTERRUPTED
        completed = checkpoint.completed_counters()
        assert sorted(completed) == [0, 1]
        for index in (0, 1):
            assert completed[index] == serial_results[index]
        self._resume_and_check(root, run_id, points, serial_results)

    def test_sigkill_leaves_valid_journal_and_resumes(
        self, tmp_path, points, serial_results
    ):
        child, root = _spawn_stalling_sweep(tmp_path)
        try:
            run_id = _wait_for_journal(root, lines=2)
            child.kill()
            child.wait(timeout=60)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait()
        checkpoint = SweepCheckpoint.load(root, run_id)
        # kill -9 never reaches mark_interrupted: the run stays "running".
        assert checkpoint.status == STATUS_RUNNING
        completed = checkpoint.completed_counters()
        assert sorted(completed) == [0, 1]
        for index in (0, 1):
            assert completed[index] == serial_results[index]
        self._resume_and_check(root, run_id, points, serial_results)


class TestHeartbeat:
    def test_stall_detected_and_point_recovered(
        self, tmp_path, points, serial_results
    ):
        """A worker that goes silent must be caught by the heartbeat
        watchdog — long before any per-point timeout — and its point
        retried to a bit-identical result."""
        workload, mode = points[1]
        injector = FaultInjector(
            stall=frozenset({FaultInjector.token(workload.cache_key, mode)}),
            stall_seconds=600.0,
            state_dir=str(tmp_path / "state"),  # fires once, retry succeeds
        )
        telemetry = JsonlTelemetry(tmp_path / "telemetry.jsonl")
        started = time.monotonic()
        outcome = run_sweep_resilient(
            fresh_runner(),
            points,
            jobs=2,
            policy=FaultPolicy(
                timeout=None, retries=2, backoff=0.05, heartbeat_timeout=2.0
            ),
            telemetry=telemetry,
            injector=injector,
        )
        elapsed = time.monotonic() - started
        assert outcome.ok
        assert outcome.results == serial_results
        assert elapsed < 120.0  # nowhere near the 600 s stall
        events = read_events(telemetry.path)
        stalls = [e for e in events if e["event"] == "stall_detected"]
        assert stalls and stalls[0]["point"] == workload.cache_key
        assert stalls[0]["quiet_seconds"] >= 2.0
        reasons = [
            e.get("reason", "")
            for e in events
            if e["event"] == "point_retried"
        ]
        assert any("stalled" in reason for reason in reasons)
        rebuilds = [e for e in events if e["event"] == "pool_rebuilt"]
        assert rebuilds and rebuilds[0]["stalled"] == 1

    def test_env_stall_injection_trips_watchdog(
        self, tmp_path, monkeypatch, points
    ):
        """REPRO_FAULT_INJECT=stall must drive the same detection path."""
        workload, mode = points[0]
        monkeypatch.setenv(
            "REPRO_FAULT_INJECT",
            f"stall={FaultInjector.token(workload.cache_key, mode)};"
            f"stall_seconds=600;state={tmp_path / 'state'}",
        )
        telemetry = RecordingTelemetry()
        outcome = run_sweep_resilient(
            fresh_runner(),
            points,
            jobs=2,
            policy=FaultPolicy(
                timeout=None, retries=2, backoff=0.05, heartbeat_timeout=2.0
            ),
            telemetry=telemetry,
        )
        assert outcome.ok
        assert telemetry.of("stall_detected")


class TestRunListing:
    def test_list_and_format_runs(self, tmp_path, points, serial_results):
        done = SweepCheckpoint.attach(tmp_path, fresh_runner(), points)
        for index, counters in enumerate(serial_results):
            done.record(index, counters)
        done.mark_completed()
        done.close()
        partial = SweepCheckpoint.attach(
            tmp_path, Runner(max_sim_events=10_000), points, label="partial"
        )
        partial.record(0, serial_results[0])
        partial.mark_interrupted()
        partial.close()

        runs = {r["run_id"]: r for r in list_runs(tmp_path)}
        assert runs[done.run_id]["status"] == STATUS_COMPLETED
        assert runs[done.run_id]["completed"] == 3
        assert runs[partial.run_id]["status"] == STATUS_INTERRUPTED
        assert runs[partial.run_id]["completed"] == 1
        assert runs[partial.run_id]["label"] == "partial"

        table = format_runs(list_runs(tmp_path))
        assert done.run_id in table
        assert "1/3" in table

    def test_fully_journaled_running_run_promoted(
        self, tmp_path, points, serial_results
    ):
        """A parent killed after the last journal write but before the
        completed marker must still list as completed."""
        checkpoint = SweepCheckpoint.attach(tmp_path, fresh_runner(), points)
        for index, counters in enumerate(serial_results):
            checkpoint.record(index, counters)
        checkpoint.close()  # status.json still says "running"
        (run,) = list_runs(tmp_path)
        assert run["status"] == STATUS_COMPLETED

    def test_empty_root(self, tmp_path):
        assert list_runs(tmp_path / "nothing-here") == []
        assert format_runs([]) == "no checkpointed runs"
