"""Tests for the replay tolerance policy and verdict buckets."""

import json

import pytest

from repro.golden.replay import (
    STATUS_CORRUPT,
    STATUS_FAIL,
    STATUS_MISSING,
    STATUS_PASS,
    STATUS_STALE,
    PointReport,
    ReplayReport,
    TolerancePolicy,
    capture_goldens,
    replay_goldens,
)
from repro.golden.store import GoldenStore

from .conftest import RecordingTelemetry, fresh_runner


def wide_policy():
    """A band no honest re-run on any machine can fall outside."""
    return TolerancePolicy(time_rel_band=1e9)


def tamper(store, entry, mutate):
    """Rewrite one stored golden after applying ``mutate`` to its body."""
    body = json.loads(store.path_for(entry["id"]).read_text("utf-8"))
    mutate(body)
    store.path_for(entry["id"]).write_text(json.dumps(body), "utf-8")


class TestPolicy:
    def test_negative_band_rejected(self):
        with pytest.raises(ValueError, match="time_rel_band"):
            TolerancePolicy(time_rel_band=-0.1)

    def test_from_env_reads_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPLAY_TIME_BAND", "0.25")
        assert TolerancePolicy.from_env().time_rel_band == 0.25

    def test_explicit_band_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPLAY_TIME_BAND", "0.25")
        assert TolerancePolicy.from_env(0.75).time_rel_band == 0.75

    def test_default_band(self, monkeypatch):
        monkeypatch.delenv("REPRO_REPLAY_TIME_BAND", raising=False)
        assert TolerancePolicy.from_env().time_rel_band == 0.5


class TestCaptureReplayCycle:
    def test_honest_replay_passes(self, tmp_path, points, telemetry):
        store = GoldenStore(tmp_path, telemetry=telemetry)
        entries = capture_goldens(
            fresh_runner(), points, store, telemetry=telemetry
        )
        assert len(entries) == len(points)
        assert len(telemetry.of("golden_captured")) == len(points)

        report = replay_goldens(
            fresh_runner(), points, store, policy=wide_policy(),
            telemetry=telemetry,
        )
        assert [p.status for p in report.points] == [STATUS_PASS] * len(
            points
        )
        assert report.ok() and report.ok("counters")
        assert report.summary[STATUS_PASS] == len(points)
        assert len(telemetry.of("replay_point")) == len(points)

    def test_capture_records_digests_and_counters(self, tmp_path, points):
        runner = fresh_runner()
        entries = capture_goldens(runner, points, GoldenStore(tmp_path))
        for (workload, mode), entry in zip(points, entries):
            assert entry["machine_digest"] == runner.machine_digest()
            assert entry["digest"] == runner.point_digest(
                workload.cache_key, mode
            )
            assert entry["counters"]["phases"]
            assert entry["timing"]["seconds"] > 0

    def test_counter_mismatch_fails(self, tmp_path, points):
        store = GoldenStore(tmp_path)
        entries = capture_goldens(fresh_runner(), points, store)

        def corrupt_counters(body):
            body["counters"]["phases"][0]["instructions"] += 1

        tamper(store, entries[0], corrupt_counters)
        report = replay_goldens(
            fresh_runner(), points, store, policy=wide_policy()
        )
        first, second = report.points
        assert first.status == STATUS_FAIL
        assert first.failure == "counters"
        (drift,) = first.counter_drift
        assert drift["field"] == "phases[0].instructions"
        assert drift["golden"] == drift["replay"] + 1
        assert second.status == STATUS_PASS
        assert not report.ok() and not report.ok("counters")

    def test_timing_inside_band_passes(self, tmp_path, points):
        store = GoldenStore(tmp_path)
        capture_goldens(fresh_runner(), points, store)
        report = replay_goldens(
            fresh_runner(), points, store, policy=wide_policy()
        )
        assert all(p.status == STATUS_PASS for p in report.points)
        assert all(p.time_drift is not None for p in report.points)

    def test_timing_outside_band_fails_timing_only(self, tmp_path, points):
        store = GoldenStore(tmp_path)
        entries = capture_goldens(fresh_runner(), points, store)
        # An absurd golden wall-clock forces drift ~ -100%, far outside
        # any reasonable band, without touching counters.
        for entry in entries:
            tamper(
                store, entry, lambda body: body["timing"].update(
                    seconds=1e6
                )
            )
        report = replay_goldens(
            fresh_runner(), points, store,
            policy=TolerancePolicy(time_rel_band=0.5),
        )
        assert all(p.status == STATUS_FAIL for p in report.points)
        assert all(p.failure == "timing" for p in report.points)
        assert all(not p.counter_drift for p in report.points)
        # Timing excursions fail the full gate but never the CI
        # counters-only merge gate.
        assert not report.ok("all")
        assert report.ok("counters")


class TestStaleAndMissing:
    def test_machine_drift_reports_stale_not_fail(self, tmp_path, points):
        store = GoldenStore(tmp_path)
        capture_goldens(fresh_runner(), points, store)
        # A different runner configuration changes the machine digest: the
        # comparison is invalid, the code is not wrong.
        drifted = fresh_runner(max_sim_events=10_000)
        report = replay_goldens(drifted, points, store, policy=wide_policy())
        assert [p.status for p in report.points] == [STATUS_STALE] * len(
            points
        )
        assert report.summary[STATUS_STALE] == len(points)
        assert report.summary[STATUS_FAIL] == 0
        assert report.ok() and report.ok("counters")

    def test_empty_store_reports_missing(self, tmp_path, points):
        report = replay_goldens(
            fresh_runner(), points, GoldenStore(tmp_path),
            policy=wide_policy(),
        )
        assert [p.status for p in report.points] == [STATUS_MISSING] * len(
            points
        )
        # Bootstrap semantics: a repo with no goldens yet gates green.
        assert report.ok() and report.ok("counters")

    def test_corrupt_golden_skipped_with_telemetry(
        self, tmp_path, points, telemetry
    ):
        store = GoldenStore(tmp_path, telemetry=telemetry)
        entries = capture_goldens(fresh_runner(), points, store)
        store.path_for(entries[0]["id"]).write_text("torn{", "utf-8")
        report = replay_goldens(
            fresh_runner(), points, store, policy=wide_policy(),
            telemetry=telemetry,
        )
        first, second = report.points
        assert first.status == STATUS_CORRUPT
        assert second.status == STATUS_PASS
        assert telemetry.of("golden_corrupt")
        assert report.ok() and report.ok("counters")


class TestPerturbDrill:
    def test_perturbation_fails_the_gate(
        self, tmp_path, points, monkeypatch
    ):
        store = GoldenStore(tmp_path)
        entries = capture_goldens(fresh_runner(), points, store)
        monkeypatch.setenv("REPRO_REPLAY_PERTURB", "7")
        report = replay_goldens(
            fresh_runner(), points, store, policy=wide_policy()
        )
        assert all(p.status == STATUS_FAIL for p in report.points)
        assert all(p.failure == "counters" for p in report.points)
        for point in report.points:
            (drift,) = point.counter_drift
            assert drift["field"] == "phases[0].instructions"
            assert drift["replay"] - drift["golden"] == 7
        # The drill perturbs only the differ's copy: stored goldens are
        # untouched and an unperturbed replay still passes.
        monkeypatch.delenv("REPRO_REPLAY_PERTURB")
        for entry in entries:
            stored, status = store.get(
                entry["machine_digest"], entry["point"], entry["mode"]
            )
            assert status == GoldenStore.STATUS_OK
            assert stored == entry
        clean = replay_goldens(
            fresh_runner(), points, store, policy=wide_policy()
        )
        assert clean.ok()

    def test_non_integer_perturb_rejected(
        self, tmp_path, points, monkeypatch
    ):
        store = GoldenStore(tmp_path)
        capture_goldens(fresh_runner(), points, store)
        monkeypatch.setenv("REPRO_REPLAY_PERTURB", "lots")
        with pytest.raises(ValueError, match="REPRO_REPLAY_PERTURB"):
            replay_goldens(
                fresh_runner(), points, store, policy=wide_policy()
            )


class TestReportShape:
    def test_as_dict_is_json_roundtrippable(self, tmp_path, points):
        store = GoldenStore(tmp_path)
        capture_goldens(fresh_runner(), points, store)
        report = replay_goldens(
            fresh_runner(), points, store, policy=wide_policy()
        )
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["ok"] is True
        assert payload["ok_counters"] is True
        assert payload["machine_digest"] == report.machine_digest
        assert len(payload["points"]) == len(points)
        assert set(payload["summary"]) == {
            STATUS_PASS,
            STATUS_FAIL,
            STATUS_STALE,
            STATUS_MISSING,
            STATUS_CORRUPT,
        }

    def test_unknown_gate_rejected(self):
        report = ReplayReport(machine_digest="m", policy=TolerancePolicy())
        with pytest.raises(ValueError, match="gate"):
            report.failures("vibes")

    def test_counters_gate_filters_timing_failures(self):
        timing = PointReport(
            point="p", mode="baseline", status=STATUS_FAIL, failure="timing"
        )
        counters = PointReport(
            point="q", mode="cobra", status=STATUS_FAIL, failure="counters"
        )
        report = ReplayReport(
            machine_digest="m",
            policy=TolerancePolicy(),
            points=(timing, counters),
        )
        assert report.failures("all") == [timing, counters]
        assert report.failures("counters") == [counters]
