"""Shared fixtures for the golden capture/replay tests."""

import pytest

from repro.harness import Runner
from repro.harness.inputs import make_workload
from repro.harness.modes import BASELINE, PB_SW

SCALE = 13


def fresh_runner(**kwargs):
    kwargs.setdefault("max_sim_events", 20_000)
    return Runner(**kwargs)


class RecordingTelemetry:
    enabled = True

    def __init__(self):
        self.events = []

    def emit(self, event, **fields):
        self.events.append({"event": event, **fields})

    def emit_timed(self, event, duration_s, **fields):
        self.emit(
            event,
            duration_s=float(duration_s),
            seconds=float(duration_s),
            **fields,
        )

    def of(self, name):
        return [e for e in self.events if e["event"] == name]

    def flush(self):
        pass

    def close(self):
        pass


@pytest.fixture(scope="module")
def points():
    graph = make_workload("degree-count", "KRON", scale=SCALE)
    return [(graph, BASELINE), (graph, PB_SW)]


@pytest.fixture()
def runner():
    return fresh_runner()


@pytest.fixture()
def telemetry():
    return RecordingTelemetry()
