"""Tests for the content-addressed golden-run store."""

import json

import pytest

from repro.golden.store import (
    FORMAT_VERSION,
    GoldenStore,
    default_golden_dir,
    golden_id,
)

from .conftest import RecordingTelemetry


def make_entry(machine="m1", point="w:IN:13", mode="baseline", **overrides):
    entry = {
        "version": FORMAT_VERSION,
        "id": golden_id(machine, point, mode),
        "machine_digest": machine,
        "point": point,
        "mode": mode,
        "digest": "d" * 16,
        "counters": {"cycles": 100, "phases": [{"instructions": 10}]},
        "timing": {"seconds": 0.25},
    }
    entry.update(overrides)
    return entry


class TestAddressing:
    def test_golden_id_is_content_addressed(self):
        one = golden_id("m1", "w:IN:13", "baseline")
        assert golden_id("m1", "w:IN:13", "baseline") == one
        assert golden_id("m2", "w:IN:13", "baseline") != one
        assert golden_id("m1", "w:IN:14", "baseline") != one
        assert golden_id("m1", "w:IN:13", "cobra") != one

    def test_mode_objects_stringify(self):
        from repro.harness.modes import BASELINE

        assert golden_id("m", "p", BASELINE) == golden_id(
            "m", "p", str(BASELINE)
        )


class TestRoundtrip:
    def test_put_get_roundtrip(self, tmp_path):
        store = GoldenStore(tmp_path)
        entry = make_entry()
        store.put(entry)
        found, status = store.get("m1", "w:IN:13", "baseline")
        assert status == GoldenStore.STATUS_OK
        assert found == entry
        assert len(store) == 1

    def test_put_rejects_missing_keys(self, tmp_path):
        entry = make_entry()
        del entry["counters"]
        with pytest.raises(ValueError, match="counters"):
            GoldenStore(tmp_path).put(entry)

    def test_missing_entry(self, tmp_path):
        entry, status = GoldenStore(tmp_path).get("m1", "w:IN:13", "pb-sw")
        assert entry is None
        assert status == GoldenStore.STATUS_MISSING

    def test_entries_sorted_by_point_and_mode(self, tmp_path):
        store = GoldenStore(tmp_path)
        store.put(make_entry(point="z:IN:13"))
        store.put(make_entry(point="a:IN:13", mode="cobra"))
        store.put(make_entry(point="a:IN:13", mode="baseline"))
        assert [(e["point"], e["mode"]) for e in store.entries()] == [
            ("a:IN:13", "baseline"),
            ("a:IN:13", "cobra"),
            ("z:IN:13", "baseline"),
        ]


class TestCorruptEntries:
    """Unreadable goldens degrade to recapture with telemetry, mirroring
    the checkpoint journal's torn-line handling."""

    def assert_corrupt(self, store, telemetry, expected_events=1):
        entry, status = store.get("m1", "w:IN:13", "baseline")
        assert entry is None
        assert status == GoldenStore.STATUS_CORRUPT
        assert len(telemetry.of("golden_corrupt")) == expected_events

    def test_unparseable_json(self, tmp_path):
        telemetry = RecordingTelemetry()
        store = GoldenStore(tmp_path, telemetry=telemetry)
        entry = make_entry()
        store.put(entry)
        store.path_for(entry["id"]).write_text("not json {", "utf-8")
        self.assert_corrupt(store, telemetry)

    def test_version_drift(self, tmp_path):
        telemetry = RecordingTelemetry()
        store = GoldenStore(tmp_path, telemetry=telemetry)
        store.put(make_entry(version=FORMAT_VERSION + 1))
        self.assert_corrupt(store, telemetry)

    def test_missing_required_key(self, tmp_path):
        telemetry = RecordingTelemetry()
        store = GoldenStore(tmp_path, telemetry=telemetry)
        entry = make_entry()
        store.put(entry)
        broken = dict(entry)
        del broken["digest"]
        store.path_for(entry["id"]).write_text(json.dumps(broken), "utf-8")
        self.assert_corrupt(store, telemetry)

    def test_id_address_mismatch(self, tmp_path):
        telemetry = RecordingTelemetry()
        store = GoldenStore(tmp_path, telemetry=telemetry)
        entry = make_entry()
        store.put(entry)
        # A renamed/copied file whose body addresses a different point.
        imposter = make_entry(point="other:IN:13")
        store.path_for(entry["id"]).write_text(json.dumps(imposter), "utf-8")
        self.assert_corrupt(store, telemetry)

    def test_entries_skip_corrupt_files(self, tmp_path):
        telemetry = RecordingTelemetry()
        store = GoldenStore(tmp_path, telemetry=telemetry)
        good = make_entry()
        store.put(good)
        (tmp_path / "ffffffffffffffff.json").write_text("torn", "utf-8")
        assert store.entries() == [good]
        assert len(telemetry.of("golden_corrupt")) == 1


class TestFindPoint:
    def test_finds_same_point_under_other_machine(self, tmp_path):
        store = GoldenStore(tmp_path)
        store.put(make_entry(machine="old-machine"))
        found = store.find_point("w:IN:13", "baseline")
        assert found is not None
        assert found["machine_digest"] == "old-machine"
        assert store.find_point("w:IN:13", "cobra") is None
        assert store.find_point("other:IN:13", "baseline") is None


class TestDefaultDir:
    def test_env_override_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_GOLDEN_DIR", str(tmp_path / "g"))
        assert default_golden_dir() == tmp_path / "g"

    def test_repo_checkout_uses_results_dir(self, monkeypatch):
        monkeypatch.delenv("REPRO_GOLDEN_DIR", raising=False)
        root = default_golden_dir()
        assert root.parts[-3:] == ("benchmarks", "results", ".golden")

    def test_installed_copy_falls_back_to_xdg(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_GOLDEN_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        fake_pkg = tmp_path / "site" / "repro" / "golden" / "store.py"
        fake_pkg.parent.mkdir(parents=True)
        fake_pkg.write_text("", "utf-8")
        root = default_golden_dir(package_file=fake_pkg)
        assert root == tmp_path / "xdg" / "repro" / "golden"
