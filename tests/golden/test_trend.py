"""Tests for the BENCH_*.json perf-trajectory renderer."""

from repro.golden.trend import bench_trend, format_trend, trend_metrics
from repro.harness.benchhistory import append_bench_record


class TestMetricExtraction:
    def test_speedup_leaves_found_at_any_depth(self):
        record = {
            "pipeline": {"speedup": 3.5, "seconds": 1.2},
            "des_eviction": {"nested": {"speedup_vs_flat": 2.0}},
            "speedup": 4,
        }
        assert trend_metrics(record) == {
            "pipeline.speedup": 3.5,
            "des_eviction.nested.speedup_vs_flat": 2.0,
            "speedup": 4.0,
        }

    def test_non_numeric_and_bool_ignored(self):
        assert trend_metrics(
            {"speedup": "fast", "speedup_ok": True, "other": 9}
        ) == {}


class TestTrajectory:
    def seed_history(self, results_dir):
        path = results_dir / "BENCH_sample.json"
        append_bench_record(
            path,
            {"pipeline": {"speedup": 3.0}},
            git_sha="a" * 40,
            recorded="2026-08-01T00:00:00Z",
        )
        append_bench_record(
            path,
            {"pipeline": {"speedup": 4.5}},
            git_sha="b" * 40,
            recorded="2026-08-08T00:00:00Z",
        )
        return path

    def test_two_entries_produce_a_trajectory(self, tmp_path):
        self.seed_history(tmp_path)
        data = bench_trend(tmp_path)
        (bench,) = data["benches"]
        assert bench["bench"] == "sample"
        assert [e["metrics"]["pipeline.speedup"] for e in bench["entries"]] \
            == [3.0, 4.5]
        text = format_trend(data)
        assert "sample (2 entries)" in text
        assert "net change (newest vs oldest)" in text
        assert "+50.0%" in text

    def test_corrupt_history_skipped_not_fatal(self, tmp_path):
        self.seed_history(tmp_path)
        (tmp_path / "BENCH_broken.json").write_text("nope{", "utf-8")
        data = bench_trend(tmp_path)
        assert len(data["benches"]) == 1
        (skip,) = data["skipped"]
        assert "BENCH_broken.json" in skip["path"]
        assert "SKIPPED" in format_trend(data)

    def test_empty_dir_renders_placeholder(self, tmp_path):
        assert format_trend(bench_trend(tmp_path)) == (
            "no BENCH_*.json history found"
        )

    def test_single_entry_has_no_net_change_line(self, tmp_path):
        append_bench_record(
            tmp_path / "BENCH_one.json", {"speedup": 2.0}
        )
        text = format_trend(bench_trend(tmp_path))
        assert "one (1 entries)" in text
        assert "net change" not in text
