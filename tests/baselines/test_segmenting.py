"""Tests for CSR-Segmenting (graph tiling)."""

import numpy as np
import pytest

from repro.baselines import SegmentedGraph
from repro.graphs import build_csr, rmat


@pytest.fixture(scope="module")
def graph():
    return build_csr(rmat(1 << 10, 1 << 13, seed=17))


class TestSegmentation:
    def test_segment_count(self, graph):
        segmented = SegmentedGraph(graph, segment_range=256)
        assert segmented.num_segments == graph.num_vertices // 256

    def test_single_segment_when_range_covers_graph(self, graph):
        segmented = SegmentedGraph(graph, segment_range=graph.num_vertices)
        assert segmented.num_segments == 1

    def test_edges_partitioned(self, graph):
        segmented = SegmentedGraph(graph, segment_range=128)
        assert (
            sum(s.num_edges for s in segmented.segments) == graph.num_edges
        )

    def test_sources_within_segment_range(self, graph):
        segmented = SegmentedGraph(graph, segment_range=128)
        for segment in segmented.segments:
            if segment.num_edges:
                assert segment.srcs.min() >= segment.src_lo
                assert segment.srcs.max() < segment.src_hi

    def test_destinations_sorted_and_unique(self, graph):
        segmented = SegmentedGraph(graph, segment_range=128)
        for segment in segmented.segments:
            assert np.all(np.diff(segment.dsts) > 0)

    def test_range_validated(self, graph):
        with pytest.raises(ValueError):
            SegmentedGraph(graph, segment_range=0)


class TestScatterSum:
    def test_matches_direct_scatter(self, graph, rng):
        segmented = SegmentedGraph(graph, segment_range=128)
        values = rng.standard_normal(graph.num_vertices)
        direct = np.zeros(graph.num_vertices)
        np.add.at(direct, graph.neighbors, values[graph.edge_sources()])
        assert np.allclose(segmented.scatter_sum(values), direct)

    def test_segment_range_does_not_change_result(self, graph, rng):
        values = rng.standard_normal(graph.num_vertices)
        coarse = SegmentedGraph(graph, 512).scatter_sum(values)
        fine = SegmentedGraph(graph, 64).scatter_sum(values)
        assert np.allclose(coarse, fine)

    def test_shape_validated(self, graph):
        segmented = SegmentedGraph(graph, 128)
        with pytest.raises(ValueError):
            segmented.scatter_sum(np.ones(3))

    def test_preprocessing_cost_reported(self, graph):
        assert SegmentedGraph(graph, 128).preprocessing_edge_passes() == 2

    def test_total_partials_bounded_by_edges(self, graph):
        segmented = SegmentedGraph(graph, 128)
        assert segmented.total_partials <= graph.num_edges
        assert segmented.total_partials >= segmented.num_segments
