"""Tests for the PHI baseline model."""

import numpy as np
import pytest

from repro.baselines import PhiMachine
from repro.core import CobraConfig
from repro.pb import BinSpec


@pytest.fixture
def config():
    return CobraConfig(num_indices=1 << 14, tuple_bytes=8)


@pytest.fixture
def memory_spec():
    return BinSpec.from_num_bins(1 << 14, 64)  # the software compromise


class TestPhi:
    def test_memory_bins_follow_compromise(self, config, memory_spec):
        machine = PhiMachine(config, memory_spec, "add").bininit()
        assert machine.memory_bins.num_bins == memory_spec.num_bins

    def test_namespace_mismatch_rejected(self, config):
        with pytest.raises(ValueError, match="namespace"):
            PhiMachine(config, BinSpec(64, 16), "add")

    def test_sums_preserved_through_hierarchy(self, config, memory_spec, rng):
        indices = rng.integers(0, 1 << 14, size=15_000)
        machine = PhiMachine(config, memory_spec, "add").bininit()
        machine.binupdate_many(indices.tolist(), [1] * 15_000)
        machine.binflush()
        sums = np.zeros(1 << 14, dtype=np.int64)
        for bin_tuples in machine.memory_bins.bins:
            for index, value in bin_tuples:
                sums[index] += value
        assert np.array_equal(sums, np.bincount(indices, minlength=1 << 14))

    def test_coalesces_at_every_level(self, config, memory_spec, rng):
        indices = rng.integers(0, 64, size=10_000)  # hot range
        machine = PhiMachine(config, memory_spec, "add").bininit()
        machine.binupdate_many(indices.tolist(), [1] * 10_000)
        machine.binflush()
        per_level = machine.coalesced_per_level
        assert per_level["l1"] > 0
        assert per_level["llc"] >= 0
        assert machine.coalesced == sum(per_level.values())

    def test_llc_dominates_coalescing_on_moderate_reuse(
        self, config, memory_spec, rng
    ):
        """Section VII-C: PHI coalesces most updates at the LLC (the
        private-level buffers are small and short-lived)."""
        indices = rng.integers(0, 1 << 14, size=40_000)
        machine = PhiMachine(config, memory_spec, "add").bininit()
        machine.binupdate_many(indices.tolist(), [1] * 40_000)
        machine.binflush()
        per_level = machine.coalesced_per_level
        total = max(machine.coalesced, 1)
        assert per_level["llc"] / total > 0.5

    def test_traffic_reduced_on_skewed_streams(self, config, memory_spec, rng):
        skewed = rng.integers(0, 512, size=20_000)
        machine = PhiMachine(config, memory_spec, "add").bininit()
        machine.binupdate_many(skewed.tolist(), [1] * 20_000)
        machine.binflush()
        uncoalesced_lines = 20_000 // config.tuples_per_line
        assert machine.memory_bins.lines_written < uncoalesced_lines
