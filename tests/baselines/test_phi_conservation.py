"""Conservation properties of the coalescing machines (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import PhiMachine
from repro.core import CobraCommMachine, CobraConfig
from repro.pb import BinSpec


@given(st.lists(st.integers(0, 511), min_size=0, max_size=400))
@settings(max_examples=40, deadline=None)
def test_phi_preserves_sums(raw):
    config = CobraConfig(num_indices=512, tuple_bytes=8)
    machine = PhiMachine(
        config, BinSpec.from_num_bins(512, 8), "add"
    ).bininit()
    machine.binupdate_many(raw, [1] * len(raw))
    machine.binflush()
    sums = np.zeros(512, dtype=np.int64)
    for bin_tuples in machine.memory_bins.bins:
        for index, value in bin_tuples:
            sums[index] += value
    expected = np.bincount(np.array(raw, dtype=np.int64), minlength=512)
    assert np.array_equal(sums, expected)


@given(st.lists(st.integers(0, 511), min_size=0, max_size=400))
@settings(max_examples=40, deadline=None)
def test_comm_tuples_plus_coalesced_equals_stream(raw):
    config = CobraConfig(num_indices=512, tuple_bytes=8)
    machine = CobraCommMachine(config, "add").bininit()
    machine.binupdate_many(raw, [1] * len(raw))
    machine.binflush()
    assert machine.memory_bins.total_tuples + machine.coalesced == len(raw)


@given(st.lists(st.integers(0, 511), min_size=1, max_size=300))
@settings(max_examples=40, deadline=None)
def test_comm_never_exceeds_plain_traffic(raw):
    from repro.core import CobraMachine

    config = CobraConfig(num_indices=512, tuple_bytes=8)
    plain = CobraMachine(config).bininit()
    plain.binupdate_many(raw, [1] * len(raw))
    plain.binflush()
    comm = CobraCommMachine(config, "add").bininit()
    comm.binupdate_many(raw, [1] * len(raw))
    comm.binflush()
    assert (
        comm.memory_bins.lines_written <= plain.memory_bins.lines_written
    )
    assert comm.memory_bins.total_tuples <= plain.memory_bins.total_tuples
