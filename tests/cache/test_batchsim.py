"""Equivalence of the batched trace engine with the scalar simulators.

:class:`BatchHierarchy` exists purely for speed; any behavioural divergence
from :class:`FastHierarchy` (itself equivalence-tested against the reference
object model) is a bug. These tests drive all three with the same traces —
random, streaming, adversarially small geometries, and hypothesis-generated
— and require bit-identical statistics.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import BatchHierarchy, FastHierarchy, HierarchyConfig

TINY = HierarchyConfig(
    l1_bytes=512,
    l1_ways=2,
    l2_bytes=2048,
    l2_ways=4,
    llc_bytes=8192,
    llc_ways=8,
    llc_policy="plru",
    prefetch=False,
)

BATCHABLE = {
    "tiny-plru": TINY,
    "tiny-lru": HierarchyConfig(
        l1_bytes=512,
        l1_ways=2,
        l2_bytes=2048,
        l2_ways=4,
        llc_bytes=8192,
        llc_ways=8,
        l1_policy="lru",
        l2_policy="lru",
        llc_policy="lru",
        prefetch=False,
    ),
    "mixed-policies": HierarchyConfig(
        l1_policy="lru",
        l2_policy="plru",
        llc_policy="lru",
        prefetch=False,
    ),
    "default-geometry": HierarchyConfig(prefetch=False, llc_policy="plru"),
}


def assert_equivalent(config, lines, writes):
    fast = FastHierarchy(config)
    batch = BatchHierarchy(config)
    fast_counts = fast.run_trace(list(lines), list(writes))
    batch_counts = batch.run_trace(
        np.asarray(lines, dtype=np.int64), np.asarray(writes, dtype=bool)
    )
    assert batch_counts == fast_counts
    assert batch.hits == fast.hits
    assert batch.misses == fast.misses
    assert batch.dram_reads == fast.dram_reads
    assert batch.dram_writes == fast.dram_writes
    return fast, batch


@pytest.mark.parametrize("name", sorted(BATCHABLE))
def test_equivalence_random_trace(name):
    config = BATCHABLE[name]
    rng = np.random.default_rng(1234)
    lines = rng.integers(0, 5000, size=20_000)
    writes = rng.random(20_000) < 0.4
    assert_equivalent(config, lines, writes)


@pytest.mark.parametrize("name", sorted(BATCHABLE))
def test_equivalence_against_reference(name):
    """Three-way check: batch == fast == reference object model."""
    config = BATCHABLE[name]
    rng = np.random.default_rng(99)
    lines = rng.integers(0, 600, size=4_000)
    writes = rng.random(4_000) < 0.5
    reference = config.build_reference()
    ref_counts = [0, 0, 0, 0, 0]
    for line, is_write in zip(lines.tolist(), writes.tolist()):
        ref_counts[reference.access(line, is_write)] += 1
    _fast, batch = assert_equivalent(config, lines, writes)
    batch_counts = BatchHierarchy(config).run_trace(lines, writes)
    assert ref_counts[1:] == [
        batch_counts.l1,
        batch_counts.l2,
        batch_counts.llc,
        batch_counts.dram,
    ]
    assert reference.dram_writes == batch.dram_writes


def test_equivalence_streaming_trace():
    lines = np.asarray(list(range(3000)) * 2)
    assert_equivalent(TINY, lines, np.zeros(lines.size, dtype=bool))


def test_stateful_across_chunks():
    """Repeated ``run_trace`` calls carry cache contents over, exactly as
    repeated ``access`` calls do on the scalar engine."""
    rng = np.random.default_rng(5)
    fast = FastHierarchy(TINY)
    batch = BatchHierarchy(TINY)
    for _ in range(4):
        lines = rng.integers(0, 2000, size=5_000)
        writes = rng.random(5_000) < 0.5
        a = fast.run_trace(lines.tolist(), writes.tolist())
        b = batch.run_trace(lines, writes)
        assert a == b
    assert batch.dram_writes == fast.dram_writes


@given(
    lines=st.lists(st.integers(0, 255), min_size=1, max_size=400),
    write_bits=st.integers(min_value=0),
)
@settings(max_examples=60, deadline=None)
def test_equivalence_property(lines, write_bits):
    writes = [(write_bits >> i) & 1 == 1 for i in range(len(lines))]
    assert_equivalent(TINY, lines, writes)


class TestCapabilities:
    def test_supports_batchable(self):
        for config in BATCHABLE.values():
            assert BatchHierarchy.supports(config)

    def test_supports_drrip(self):
        assert BatchHierarchy.supports(
            HierarchyConfig(prefetch=False)  # default LLC policy is DRRIP
        )

    def test_supports_prefetch(self):
        assert BatchHierarchy.supports(
            HierarchyConfig(llc_policy="plru", prefetch=True)
        )

    def test_supports_reserved_ways(self):
        assert BatchHierarchy.supports(
            HierarchyConfig(
                llc_policy="plru", prefetch=False, llc_reserved_ways=4
            )
        )

    def test_supports_default_machine(self):
        assert BatchHierarchy.supports(HierarchyConfig())
        assert BatchHierarchy.reject_reason(HierarchyConfig()) is None

    def test_rejects_unknown_policy(self):
        config = HierarchyConfig(llc_policy="random")
        reason = BatchHierarchy.reject_reason(config)
        assert reason is not None and "random" in reason
        assert not BatchHierarchy.supports(config)
        with pytest.raises(ValueError, match="cannot express"):
            BatchHierarchy(config)


class TestBatchSimExtras:
    def test_run_trace_scalar_write_flag(self):
        batch = BatchHierarchy(TINY)
        counts = batch.run_trace(np.asarray([1, 2, 3, 1]), True)
        assert counts.total == 4
        assert counts.l1 == 1  # the repeated line

    def test_contains(self):
        batch = BatchHierarchy(TINY)
        batch.run_trace(np.asarray([7]))
        assert batch.contains(0, 7)
        assert batch.contains(2, 7)
        assert not batch.contains(0, 8)

    def test_reset_stats_preserves_contents(self):
        batch = BatchHierarchy(TINY)
        batch.run_trace(np.asarray([7]))
        batch.reset_stats()
        assert batch.dram_reads == 0
        assert batch.run_trace(np.asarray([7])).l1 == 1  # still resident

    def test_bypass_accounting(self):
        batch = BatchHierarchy(TINY)
        batch.write_through_dram(4)
        batch.read_through_dram(2)
        assert batch.dram_writes == 4
        assert batch.dram_reads == 2

    def test_empty_trace(self):
        batch = BatchHierarchy(TINY)
        counts = batch.run_trace(np.asarray([], dtype=np.int64))
        assert counts.total == 0
