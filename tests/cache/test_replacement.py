"""Tests for replacement policies."""

import pytest

from repro.cache import DRRIP, LRU, BitPLRU, make_policy


class TestLRU:
    def test_victim_is_least_recent(self):
        lru = LRU(num_sets=1, num_ways=4)
        for way in range(4):
            lru.on_fill(0, way)
        lru.on_hit(0, 0)
        assert lru.victim(0, 0, 4) == 1

    def test_victim_respects_way_range(self):
        lru = LRU(num_sets=1, num_ways=4)
        for way in range(4):
            lru.on_fill(0, way)
        # Way 0 is oldest, but the range excludes it.
        assert lru.victim(0, 1, 4) == 1

    def test_sets_are_independent(self):
        lru = LRU(num_sets=2, num_ways=2)
        lru.on_fill(0, 0)
        lru.on_fill(0, 1)
        lru.on_fill(1, 1)
        lru.on_fill(1, 0)
        assert lru.victim(0, 0, 2) == 0
        assert lru.victim(1, 0, 2) == 1


class TestBitPLRU:
    def test_victim_is_first_clear_bit(self):
        plru = BitPLRU(num_sets=1, num_ways=4)
        plru.on_fill(0, 0)
        plru.on_fill(0, 2)
        assert plru.victim(0, 0, 4) == 1

    def test_saturation_resets_other_bits(self):
        plru = BitPLRU(num_sets=1, num_ways=2)
        plru.on_fill(0, 0)
        plru.on_fill(0, 1)  # would saturate: resets, keeps way 1
        assert plru.victim(0, 0, 2) == 0

    def test_hit_range_restricted(self):
        plru = BitPLRU(num_sets=1, num_ways=8)
        for way in range(3):
            plru.on_fill_range(0, way, 0, 4)
        assert plru.victim(0, 0, 4) == 3

    def test_recently_touched_not_victim(self):
        plru = BitPLRU(num_sets=1, num_ways=4)
        for way in range(3):
            plru.on_fill(0, way)
        plru.on_hit(0, 1)
        assert plru.victim(0, 0, 4) == 3


class TestDRRIP:
    def test_hit_promotes_to_zero(self):
        drrip = DRRIP(num_sets=64, num_ways=4)
        drrip.on_fill(0, 1)
        drrip.on_hit(0, 1)
        assert drrip._rrpv[0 * 4 + 1] == 0

    def test_victim_prefers_distant_rrpv(self):
        drrip = DRRIP(num_sets=64, num_ways=4)
        for way in range(4):
            drrip.on_fill(0, way)
        drrip.on_hit(0, 2)
        victim = drrip.victim(0, 0, 4)
        assert victim != 2

    def test_victim_always_in_range(self):
        drrip = DRRIP(num_sets=64, num_ways=8)
        for way in range(8):
            drrip.on_fill(3, way)
            drrip.on_hit(3, way)
        assert 2 <= drrip.victim(3, 2, 6) < 6

    def test_leader_sets_disjoint(self):
        drrip = DRRIP(num_sets=256, num_ways=16)
        assert not (drrip._srrip_leaders & drrip._brrip_leaders)

    def test_psel_moves_with_leader_fills(self):
        drrip = DRRIP(num_sets=256, num_ways=4)
        start = drrip._psel
        leader = next(iter(drrip._srrip_leaders))
        drrip.on_fill(leader, 0)
        assert drrip._psel == start + 1


class TestFactory:
    @pytest.mark.parametrize("name,cls", [("lru", LRU), ("plru", BitPLRU), ("drrip", DRRIP)])
    def test_make_policy(self, name, cls):
        assert isinstance(make_policy(name, 4, 4), cls)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown replacement"):
            make_policy("fifo", 4, 4)
