"""Equivalence of the fast simulator with the reference object model.

The fast simulator exists purely for speed; any behavioural divergence
from the reference hierarchy is a bug. These tests drive both with the
same traces — including randomized ones via hypothesis — and require
bit-identical statistics.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import FastHierarchy, HierarchyConfig

SMALL = HierarchyConfig(
    l1_bytes=512,
    l1_ways=2,
    l2_bytes=2048,
    l2_ways=4,
    llc_bytes=8192,
    llc_ways=8,
)


def run_both(config, lines, writes):
    reference = config.build_reference()
    fast = FastHierarchy(config)
    ref_counts = [0, 0, 0, 0, 0]
    for line, is_write in zip(lines, writes):
        ref_counts[reference.access(line, is_write)] += 1
    fast_counts = fast.run_trace(lines, writes)
    return reference, fast, ref_counts, fast_counts


@pytest.mark.parametrize(
    "config",
    [
        SMALL,
        HierarchyConfig(),  # default scaled Table II machine
        HierarchyConfig(prefetch=False),
        HierarchyConfig(l1_policy="lru", l2_policy="lru", llc_policy="lru"),
        HierarchyConfig(l1_reserved_ways=7, l2_reserved_ways=1,
                        llc_reserved_ways=15),
    ],
)
def test_equivalence_random_trace(config):
    rng = np.random.default_rng(1234)
    lines = rng.integers(0, 5000, size=20000).tolist()
    writes = (rng.random(20000) < 0.4).tolist()
    reference, fast, ref_counts, fast_counts = run_both(config, lines, writes)
    assert ref_counts[1:] == [
        fast_counts.l1,
        fast_counts.l2,
        fast_counts.llc,
        fast_counts.dram,
    ]
    assert reference.dram_reads == fast.dram_reads
    assert reference.dram_writes == fast.dram_writes
    assert reference.dram_prefetch_reads == fast.dram_prefetch_reads


def test_equivalence_streaming_trace():
    lines = list(range(3000)) * 2
    reference, fast, ref_counts, fast_counts = run_both(
        SMALL, lines, [False] * len(lines)
    )
    assert ref_counts[1:] == [
        fast_counts.l1,
        fast_counts.l2,
        fast_counts.llc,
        fast_counts.dram,
    ]


@given(
    lines=st.lists(st.integers(0, 255), min_size=1, max_size=400),
    write_bits=st.integers(min_value=0),
)
@settings(max_examples=60, deadline=None)
def test_equivalence_property(lines, write_bits):
    writes = [(write_bits >> i) & 1 == 1 for i in range(len(lines))]
    reference, fast, ref_counts, fast_counts = run_both(SMALL, lines, writes)
    assert ref_counts[1:] == [
        fast_counts.l1,
        fast_counts.l2,
        fast_counts.llc,
        fast_counts.dram,
    ]
    assert reference.dram_writes == fast.dram_writes


class TestFastSimExtras:
    def test_run_trace_scalar_write_flag(self):
        fast = FastHierarchy(SMALL)
        counts = fast.run_trace([1, 2, 3, 1], True)
        assert counts.total == 4
        assert counts.l1 == 1  # the repeated line

    def test_contains(self):
        fast = FastHierarchy(SMALL)
        fast.access(7)
        assert fast.contains(0, 7)
        assert fast.contains(2, 7)
        assert not fast.contains(0, 8)

    def test_reset_stats_preserves_contents(self):
        fast = FastHierarchy(SMALL)
        fast.access(7)
        fast.reset_stats()
        assert fast.dram_reads == 0
        assert fast.access(7) == 1  # still resident

    def test_bypass_accounting(self):
        fast = FastHierarchy(SMALL)
        fast.write_through_dram(4)
        fast.read_through_dram(2)
        assert fast.dram_writes == 4
        assert fast.dram_reads == 2
