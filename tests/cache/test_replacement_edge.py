"""Edge-case tests for replacement policies under partitioned ranges."""

from repro.cache import DRRIP, BitPLRU, Cache


class TestDrripAging:
    def test_aging_terminates_and_picks_a_way(self):
        drrip = DRRIP(num_sets=64, num_ways=4)
        for way in range(4):
            drrip.on_fill(0, way)
            drrip.on_hit(0, way)  # all RRPVs at 0: forces aging loop
        victim = drrip.victim(0, 0, 4)
        assert 0 <= victim < 4

    def test_restricted_range_never_escapes(self):
        drrip = DRRIP(num_sets=64, num_ways=8)
        for way in range(8):
            drrip.on_fill(2, way)
        for _ in range(20):
            assert 3 <= drrip.victim(2, 3, 6) < 6

    def test_brrip_occasionally_inserts_long(self):
        drrip = DRRIP(num_sets=256, num_ways=4)
        leader = next(iter(drrip._brrip_leaders))
        rrpvs = set()
        for i in range(64):
            drrip.on_fill(leader, i % 4)
            rrpvs.add(drrip._rrpv[leader * 4 + i % 4])
        assert rrpvs == {2, 3}  # mostly distant (3), 1-in-32 long (2)


class TestPlruPartitioned:
    def test_touch_range_saturation_resets_only_range(self):
        plru = BitPLRU(num_sets=1, num_ways=8)
        plru.on_fill_range(0, 7, 0, 8)  # way outside a later partition
        for way in range(4):
            plru.on_fill_range(0, way, 0, 4)
        # The [0,4) range saturated and reset; way 3 was the last touch.
        assert plru.victim(0, 0, 4) in (0, 1, 2)


class TestCacheWritebackOnReservation:
    def test_dirty_lines_in_reserved_ways_reported(self):
        cache = Cache("L1", 1024, 4, 64, policy="lru")
        # Fill all four ways of set 0, two dirty.
        for i, dirty in enumerate((False, True, False, True)):
            cache.fill(i * 4, dirty=dirty)
        evictions = cache.reserve_ways(3)
        dirty_count = sum(1 for e in evictions if e.dirty)
        assert len(evictions) == 3
        assert dirty_count >= 1

    def test_reservation_is_idempotent(self):
        cache = Cache("L1", 1024, 4, 64)
        cache.reserve_ways(2)
        assert cache.reserve_ways(2) == []  # nothing newly displaced
        assert cache.usable_ways == 2

    def test_growing_reservation_displaces_more(self):
        cache = Cache("L1", 1024, 4, 64, policy="lru")
        for i in range(4):
            cache.fill(i * 4)
        first = cache.reserve_ways(1)
        second = cache.reserve_ways(3)
        assert len(first) == 1
        assert len(second) == 2
