"""Tests for address-space layout."""

import numpy as np
import pytest

from repro.cache import AddressSpace, Region


class TestRegion:
    def test_num_lines_rounds_up(self):
        region = Region("r", element_bytes=4, num_elements=17)
        assert region.num_lines == 2  # 68 bytes -> 2 lines

    def test_line_of(self):
        region = Region("r", 8, 100, base_line=10)
        assert region.line_of(0) == 10
        assert region.line_of(7) == 10
        assert region.line_of(8) == 11

    def test_line_of_bounds_checked(self):
        region = Region("r", 8, 10)
        with pytest.raises(IndexError):
            region.line_of(10)

    def test_lines_of_vectorized_matches_scalar(self):
        region = Region("r", 4, 50, base_line=3)
        indices = np.arange(50)
        vectorized = region.lines_of(indices)
        assert all(vectorized[i] == region.line_of(i) for i in range(50))

    def test_large_elements(self):
        region = Region("r", 128, 4, base_line=0)
        assert region.line_of(1) == 2
        assert region.num_lines == 8

    def test_incompatible_element_size_rejected(self):
        with pytest.raises(ValueError, match="divide"):
            Region("r", 24, 4)


class TestAddressSpace:
    def test_regions_are_disjoint(self):
        space = AddressSpace()
        a = space.allocate("a", 4, 100)
        b = space.allocate("b", 8, 50)
        a_last = a.line_of(99)
        assert b.base_line > a_last

    def test_guard_line_between_regions(self):
        space = AddressSpace()
        a = space.allocate("a", 64, 1)
        b = space.allocate("b", 64, 1)
        assert b.base_line - (a.base_line + a.num_lines) == 1

    def test_duplicate_names_rejected(self):
        space = AddressSpace()
        space.allocate("a", 4, 10)
        with pytest.raises(ValueError, match="already"):
            space.allocate("a", 4, 10)

    def test_lookup(self):
        space = AddressSpace()
        space.allocate("a", 4, 10)
        assert "a" in space
        assert space["a"].name == "a"
        assert "b" not in space

    def test_total_lines_grows(self):
        space = AddressSpace()
        assert space.total_lines == 0
        space.allocate("a", 64, 5)
        assert space.total_lines == 6  # 5 lines + guard
