"""Tests for the stream prefetcher."""

from repro.cache import StreamPrefetcher


class TestDetection:
    def test_no_prefetch_before_threshold(self):
        pf = StreamPrefetcher(threshold=2)
        assert pf.observe(10) == []
        assert pf.observe(11) == []  # confidence 1 < threshold

    def test_prefetch_after_threshold(self):
        pf = StreamPrefetcher(degree=4, threshold=2)
        pf.observe(10)
        pf.observe(11)
        assert pf.observe(12) == [13, 14, 15, 16]

    def test_continued_stream_keeps_prefetching(self):
        pf = StreamPrefetcher(degree=2, threshold=2)
        for line in range(10, 14):
            pf.observe(line)
        assert pf.observe(14) == [15, 16]

    def test_random_accesses_never_prefetch(self):
        pf = StreamPrefetcher()
        for line in (5, 100, 3, 77, 12, 9):
            assert pf.observe(line) == []

    def test_interleaved_streams_both_tracked(self):
        pf = StreamPrefetcher(degree=1, threshold=2)
        issued = []
        for a, b in zip(range(0, 6), range(1000, 1006)):
            issued += pf.observe(a)
            issued += pf.observe(b)
        assert any(i < 100 for i in issued)
        assert any(i >= 1000 for i in issued)


class TestCapacity:
    def test_stream_table_bounded(self):
        pf = StreamPrefetcher(num_streams=2, threshold=2)
        pf.observe(0)
        pf.observe(100)
        pf.observe(200)  # displaces the oldest stream (0)
        assert pf.observe(1) == []  # stream forgotten, restarts

    def test_issued_counter(self):
        pf = StreamPrefetcher(degree=3, threshold=1)
        pf.observe(0)
        pf.observe(1)
        assert pf.issued == 3

    def test_reset(self):
        pf = StreamPrefetcher(threshold=1)
        pf.observe(0)
        pf.observe(1)
        pf.reset()
        assert pf.issued == 0
        assert pf.observe(2) == []
