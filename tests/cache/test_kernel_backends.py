"""Equivalence of every kernel backend tier on every batched cache mode.

The batched engine (:class:`BatchHierarchy`) now covers the three modes
the original implementation rejected — DRRIP set-dueling, LLC-gated
prefetch fills, and reserved-ways masking — through interchangeable
kernel tiers (``numpy`` dict kernels, the flat kernels as plain Python,
``cnative`` C, and ``numba`` when installed). Any divergence between any
tier and the scalar :class:`FastHierarchy` (itself equivalence-tested
against the reference object model) is a bug; these tests require
bit-identical statistics across all of them, including the prefetcher's
internal stream table after chunked replays.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import BatchHierarchy, FastHierarchy, HierarchyConfig
from repro.cache import kernels as kernel_backends
from repro.cache.kernels import cnative
from repro.harness.machine import DEFAULT_MACHINE


def _tiers():
    tiers = ["numpy", kernel_backends.FLAT_PYTHON]
    if kernel_backends.cnative_available():
        tiers.append("cnative")
    if kernel_backends.numba_available():
        tiers.append("numba")
    return tiers


TIERS = _tiers()

#: One config per previously-unbatchable mode, plus their combination
#: (the default machine hierarchy uses all three at once).
MODES = {
    "drrip": HierarchyConfig(
        l1_bytes=512, l1_ways=2, l2_bytes=2048, l2_ways=4,
        llc_bytes=8192, llc_ways=8, llc_policy="drrip", prefetch=False,
    ),
    "prefetch": HierarchyConfig(
        l1_bytes=512, l1_ways=2, l2_bytes=2048, l2_ways=4,
        llc_bytes=8192, llc_ways=8, llc_policy="plru", prefetch=True,
    ),
    "reserved-ways": HierarchyConfig(
        l1_bytes=512, l1_ways=4, l2_bytes=2048, l2_ways=4,
        llc_bytes=8192, llc_ways=8, llc_policy="plru", prefetch=False,
        l1_reserved_ways=1, l2_reserved_ways=2, llc_reserved_ways=3,
    ),
    "all-three": HierarchyConfig(
        l1_bytes=512, l1_ways=4, l2_bytes=2048, l2_ways=4,
        llc_bytes=8192, llc_ways=8, llc_policy="drrip", prefetch=True,
        l2_reserved_ways=1, llc_reserved_ways=2,
    ),
    "default-machine": HierarchyConfig(),
}


def assert_tier_equivalent(config, lines, writes, tiers=None):
    """Every backend tier must match FastHierarchy bit for bit."""
    lines = np.asarray(lines, dtype=np.int64)
    writes = np.asarray(writes, dtype=bool)
    fast = FastHierarchy(config)
    fast_counts = fast.run_trace(lines.tolist(), writes.tolist())
    for tier in tiers or TIERS:
        batch = BatchHierarchy(config, backend=tier)
        counts = batch.run_trace(lines, writes)
        label = f"backend={tier}"
        assert counts == fast_counts, label
        assert batch.hits == fast.hits, label
        assert batch.misses == fast.misses, label
        assert batch.dram_reads == fast.dram_reads, label
        assert batch.dram_writes == fast.dram_writes, label
        assert batch.dram_prefetch_reads == fast.dram_prefetch_reads, label
        if fast.prefetcher is not None:
            assert batch.prefetcher.issued == fast.prefetcher.issued, label
            assert batch.prefetcher._expect == fast.prefetcher._expect, label
    return fast


@pytest.mark.parametrize("name", sorted(MODES))
def test_tiers_match_fast_random_trace(name):
    config = MODES[name]
    rng = np.random.default_rng(42)
    lines = rng.integers(0, 4000, size=15_000)
    writes = rng.random(15_000) < 0.4
    assert_tier_equivalent(config, lines, writes)


@pytest.mark.parametrize("name", sorted(MODES))
def test_tiers_match_streaming_trace(name):
    """Sequential lines maximize prefetcher activity and DRRIP churn."""
    config = MODES[name]
    lines = np.concatenate([np.arange(3000), np.arange(3000)])
    assert_tier_equivalent(config, lines, np.zeros(lines.size, dtype=bool))


@pytest.mark.parametrize("name", ["drrip", "prefetch", "all-three"])
def test_tiers_match_reference_model(name):
    """Four-way check: every tier == fast == the reference object model."""
    config = MODES[name]
    rng = np.random.default_rng(7)
    lines = rng.integers(0, 500, size=3_000)
    writes = rng.random(3_000) < 0.5
    reference = config.build_reference()
    ref_counts = [0, 0, 0, 0, 0]
    for line, is_write in zip(lines.tolist(), writes.tolist()):
        ref_counts[reference.access(line, is_write)] += 1
    fast = assert_tier_equivalent(config, lines, writes)
    counts = BatchHierarchy(config).run_trace(lines, writes)
    assert ref_counts[1:] == [counts.l1, counts.l2, counts.llc, counts.dram]
    assert reference.dram_writes == fast.dram_writes


@pytest.mark.parametrize("tier", TIERS)
def test_stateful_across_chunks(tier):
    """Chunked replay must carry cache *and* prefetcher state over."""
    config = MODES["all-three"]
    rng = np.random.default_rng(3)
    fast = FastHierarchy(config)
    batch = BatchHierarchy(config, backend=tier)
    for _ in range(4):
        mixed = np.concatenate([
            rng.integers(0, 2000, size=2_000),
            np.arange(500) + int(rng.integers(0, 1000)),
        ])
        writes = rng.random(mixed.size) < 0.5
        a = fast.run_trace(mixed.tolist(), writes.tolist())
        b = batch.run_trace(mixed, writes)
        assert a == b
        assert batch.prefetcher._expect == fast.prefetcher._expect
    assert batch.dram_prefetch_reads == fast.dram_prefetch_reads
    assert batch.prefetcher.issued == fast.prefetcher.issued


@given(
    lines=st.lists(st.integers(0, 255), min_size=1, max_size=300),
    write_bits=st.integers(min_value=0),
)
@settings(max_examples=40, deadline=None)
def test_drrip_property(lines, write_bits):
    writes = [(write_bits >> i) & 1 == 1 for i in range(len(lines))]
    assert_tier_equivalent(MODES["drrip"], lines, writes)


@given(
    starts=st.lists(st.integers(0, 400), min_size=1, max_size=12),
    run=st.integers(1, 40),
)
@settings(max_examples=40, deadline=None)
def test_prefetch_property(starts, run):
    """Short sequential runs from random bases stress stream detection."""
    lines = np.concatenate([np.arange(s, s + run) for s in starts])
    assert_tier_equivalent(
        MODES["prefetch"], lines, np.zeros(lines.size, dtype=bool)
    )


@given(
    lines=st.lists(st.integers(0, 255), min_size=1, max_size=300),
    write_bits=st.integers(min_value=0),
)
@settings(max_examples=40, deadline=None)
def test_reserved_ways_property(lines, write_bits):
    writes = [(write_bits >> i) & 1 == 1 for i in range(len(lines))]
    assert_tier_equivalent(MODES["reserved-ways"], lines, writes)


def test_prefetch_counters_carry_real_values():
    """Regression: ``dram_prefetch_reads`` and ``prefetcher`` used to be
    dead attributes on the batched engine (always 0 / None-like); they
    must now track the scalar engine exactly."""
    config = MODES["prefetch"]
    lines = np.arange(4000) % 1500
    fast = FastHierarchy(config)
    fast.run_trace(lines.tolist(), [False] * lines.size)
    batch = BatchHierarchy(config)
    batch.run_trace(lines, np.zeros(lines.size, dtype=bool))
    assert fast.prefetcher.issued > 0  # the trace must actually prefetch
    assert fast.dram_prefetch_reads > 0
    assert batch.prefetcher.issued == fast.prefetcher.issued
    assert batch.dram_prefetch_reads == fast.dram_prefetch_reads


class TestFigureConfigsBatchable:
    """Every effective hierarchy a figure driver can request is batchable
    (the acceptance bar for retiring the scalar fallback)."""

    def test_default_machine(self):
        assert BatchHierarchy.reject_reason(DEFAULT_MACHINE.hierarchy) is None

    def test_every_reserved_ways_combination(self):
        """Cobra phases and the fig13 sweeps reserve up to ways-1 at each
        level; every combination must stay batchable."""
        base = DEFAULT_MACHINE.hierarchy
        for l1 in (0, 1, base.l1_ways - 1):
            for l2 in (0, 1, base.l2_ways - 1):
                for llc in (0, 1, base.llc_ways - 1):
                    config = base.with_reserved(l1, l2, llc)
                    assert BatchHierarchy.reject_reason(config) is None, (
                        l1, l2, llc,
                    )

    def test_all_shipped_policies(self):
        base = DEFAULT_MACHINE.hierarchy
        for policy in ("lru", "plru", "drrip"):
            for prefetch in (False, True):
                config = dataclasses.replace(
                    base, llc_policy=policy, prefetch=prefetch
                )
                assert BatchHierarchy.reject_reason(config) is None, (
                    policy, prefetch,
                )


class TestBackendSelection:
    def test_auto_prefers_compiled_tier(self, monkeypatch):
        monkeypatch.delenv(kernel_backends.KERNEL_BACKEND_KNOB, raising=False)
        resolved = kernel_backends.select_backend("auto")
        if kernel_backends.numba_available():
            assert resolved == "numba"
        elif kernel_backends.cnative_available():
            assert resolved == "cnative"
        else:
            assert resolved == "numpy"

    def test_numpy_always_available(self):
        assert kernel_backends.select_backend("numpy") == "numpy"
        assert "numpy" in kernel_backends.available_backends()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernel_backends.select_backend("fortran")

    def test_missing_explicit_tier_errors(self):
        if not kernel_backends.numba_available():
            with pytest.raises(RuntimeError, match="numba"):
                kernel_backends.select_backend("numba")
        if not kernel_backends.cnative_available():
            with pytest.raises(RuntimeError, match="cnative"):
                kernel_backends.select_backend("cnative")

    def test_knob_read_through_registry(self, monkeypatch):
        monkeypatch.setenv(kernel_backends.KERNEL_BACKEND_KNOB, "numpy")
        assert kernel_backends.select_backend(None) == "numpy"

    def test_flat_python_not_knob_selectable(self, monkeypatch):
        monkeypatch.setenv(
            kernel_backends.KERNEL_BACKEND_KNOB, kernel_backends.FLAT_PYTHON
        )
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernel_backends.select_backend(None)

    def test_cnative_build_is_cached(self):
        if not kernel_backends.cnative_available():
            pytest.skip("no C toolchain in this environment")
        assert cnative.load() is cnative.load()
        assert cnative.build_error() is None
