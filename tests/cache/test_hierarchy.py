"""Tests for the three-level cache hierarchy."""

import pytest

from repro.cache import (
    LEVEL_DRAM,
    LEVEL_L1,
    LEVEL_L2,
    LEVEL_LLC,
    Cache,
    CacheHierarchy,
)


@pytest.fixture
def hierarchy():
    return CacheHierarchy(
        Cache("L1", 512, 2, 64, "lru"),
        Cache("L2", 2048, 4, 64, "lru"),
        Cache("LLC", 8192, 8, 64, "lru"),
        prefetcher=None,
    )


class TestDemandPath:
    def test_cold_miss_goes_to_dram(self, hierarchy):
        assert hierarchy.access(100) == LEVEL_DRAM
        assert hierarchy.dram_reads == 1

    def test_second_access_hits_l1(self, hierarchy):
        hierarchy.access(100)
        assert hierarchy.access(100) == LEVEL_L1

    def test_l1_eviction_leaves_l2_copy(self, hierarchy):
        # L1 has 4 sets x 2 ways; lines 0,4,8 conflict in set 0.
        for line in (0, 4, 8):
            hierarchy.access(line)
        assert hierarchy.access(0) == LEVEL_L2

    def test_llc_hit_after_l2_eviction(self, hierarchy):
        # Fill enough conflicting lines to push one out of L2 but not LLC.
        lines = [0, 8, 16, 24, 32, 40]  # same L2 set (8 sets in L2)
        for line in lines:
            hierarchy.access(line)
        level = hierarchy.access(lines[0])
        assert level in (LEVEL_L2, LEVEL_LLC)

    def test_mixed_line_sizes_rejected(self):
        with pytest.raises(ValueError, match="line size"):
            CacheHierarchy(
                Cache("L1", 512, 2, 64),
                Cache("L2", 2048, 4, 32),
                Cache("LLC", 8192, 8, 64),
            )


class TestWritebacks:
    def test_dirty_line_reaches_dram_on_flush(self, hierarchy):
        hierarchy.access(5, is_write=True)
        hierarchy.flush_all()
        assert hierarchy.dram_writes == 1

    def test_clean_lines_produce_no_dram_writes(self, hierarchy):
        for line in range(50):
            hierarchy.access(line)
        hierarchy.flush_all()
        assert hierarchy.dram_writes == 0

    def test_write_allocate(self, hierarchy):
        assert hierarchy.access(9, is_write=True) == LEVEL_DRAM
        assert hierarchy.access(9) == LEVEL_L1


class TestBypassAccounting:
    def test_write_through_dram(self, hierarchy):
        hierarchy.write_through_dram(10)
        assert hierarchy.dram_writes == 10

    def test_read_through_dram(self, hierarchy):
        hierarchy.read_through_dram(3)
        assert hierarchy.dram_reads == 3


class TestReserveWays:
    def test_reservation_restricts_l1(self, hierarchy):
        hierarchy.reserve_ways(l1_ways=1)
        # One usable way: two conflicting lines now thrash.
        hierarchy.access(0)
        hierarchy.access(4)
        assert hierarchy.access(0) != LEVEL_L1

    def test_reset_stats(self, hierarchy):
        hierarchy.access(1)
        hierarchy.reset_stats()
        assert hierarchy.dram_reads == 0
        assert hierarchy.l1.accesses == 0


class TestPrefetcher:
    def test_stream_prefetch_fills_l2(self):
        from repro.cache import StreamPrefetcher

        hierarchy = CacheHierarchy(
            Cache("L1", 512, 2, 64, "lru"),
            Cache("L2", 4096, 4, 64, "lru"),
            Cache("LLC", 8192, 8, 64, "lru"),
            prefetcher=StreamPrefetcher(degree=4, threshold=2),
        )
        for line in range(3):
            hierarchy.access(line)
        # After confidence builds, the next lines should be L2-resident.
        assert hierarchy.access(3) in (LEVEL_L1, LEVEL_L2)
        assert hierarchy.dram_prefetch_reads > 0
