"""Tests for the directory-based MESI model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.coherence import (
    MESI_EXCLUSIVE,
    MESI_INVALID,
    MESI_MODIFIED,
    MESI_SHARED,
    DirectoryMESI,
)


@pytest.fixture
def directory():
    return DirectoryMESI(num_cores=4)


class TestStateTransitions:
    def test_cold_read_is_exclusive(self, directory):
        outcome = directory.read(0, 100)
        assert outcome.memory_fetch and not outcome.hit
        assert directory.state_of(0, 100) == MESI_EXCLUSIVE

    def test_cold_write_is_modified(self, directory):
        directory.write(1, 100)
        assert directory.state_of(1, 100) == MESI_MODIFIED

    def test_second_reader_shares(self, directory):
        directory.read(0, 100)
        outcome = directory.read(1, 100)
        assert outcome.cache_transfer and not outcome.memory_fetch
        assert directory.state_of(0, 100) == MESI_SHARED
        assert directory.state_of(1, 100) == MESI_SHARED

    def test_read_of_modified_forces_writeback(self, directory):
        directory.write(0, 100)
        outcome = directory.read(1, 100)
        assert outcome.writeback and outcome.cache_transfer

    def test_silent_e_to_m_upgrade(self, directory):
        directory.read(0, 100)  # E
        outcome = directory.write(0, 100)
        assert outcome.hit
        assert outcome.invalidations == 0
        assert directory.state_of(0, 100) == MESI_MODIFIED

    def test_write_invalidates_sharers(self, directory):
        for core in (0, 1, 2):
            directory.read(core, 100)
        outcome = directory.write(3, 100)
        assert outcome.invalidations == 3
        for core in (0, 1, 2):
            assert directory.state_of(core, 100) == MESI_INVALID

    def test_upgrade_from_shared_counts_as_hit(self, directory):
        directory.read(0, 100)
        directory.read(1, 100)
        outcome = directory.write(0, 100)
        assert outcome.hit  # data already present, just an upgrade
        assert outcome.invalidations == 1

    def test_repeated_writes_by_owner_hit(self, directory):
        directory.write(2, 100)
        assert directory.write(2, 100).hit

    def test_eviction_of_modified_writes_back(self, directory):
        directory.write(0, 100)
        assert directory.evict(0, 100) is True
        assert directory.state_of(0, 100) == MESI_INVALID

    def test_eviction_of_clean_is_silent(self, directory):
        directory.read(0, 100)
        directory.read(1, 100)
        assert directory.evict(0, 100) is False

    def test_core_bounds_checked(self, directory):
        with pytest.raises(IndexError):
            directory.read(4, 0)


class TestStats:
    def test_ping_pong_counts_invalidations(self, directory):
        for _ in range(10):
            directory.write(0, 7)
            directory.write(1, 7)
        # After the first write, every write invalidates the other core.
        assert directory.stats.invalidations == 19
        assert directory.stats.invalidations_per_access == pytest.approx(0.95)

    def test_private_lines_have_no_coherence_traffic(self, directory):
        # The COBRA property: core-private data (C-Buffers, per-thread
        # bins) never generates invalidations.
        for core in range(4):
            for rep in range(5):
                directory.write(core, 1000 + core)
        assert directory.stats.invalidations == 0
        assert directory.stats.cache_transfers == 0

    def test_tracked_lines(self, directory):
        directory.read(0, 1)
        directory.read(0, 2)
        directory.evict(0, 1)
        assert directory.tracked_lines == 1


class TestInvariants:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 3),  # core
                st.integers(0, 7),  # line
                st.sampled_from(["read", "write", "evict"]),
            ),
            min_size=0,
            max_size=300,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_protocol_invariants_hold(self, ops):
        directory = DirectoryMESI(num_cores=4)
        for core, line, op in ops:
            getattr(directory, op)(core, line)
            directory.check_invariants()

    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 7), st.booleans()),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_single_writer_property(self, ops):
        """At most one core ever holds a line in M/E."""
        directory = DirectoryMESI(num_cores=4)
        for core, line, is_write in ops:
            if is_write:
                directory.write(core, line)
            else:
                directory.read(core, line)
            owners = [
                c
                for c in range(4)
                if directory.state_of(c, line)
                in (MESI_MODIFIED, MESI_EXCLUSIVE)
            ]
            assert len(owners) <= 1
