"""Tests for statistics containers and hierarchy configuration."""

import pytest

from repro.cache import (
    LEVEL_DRAM,
    LEVEL_L1,
    LEVEL_L2,
    LEVEL_LLC,
    HierarchyConfig,
    MemoryTraffic,
    ServiceCounts,
)


class TestServiceCounts:
    def test_record(self):
        counts = ServiceCounts()
        for level in (LEVEL_L1, LEVEL_L1, LEVEL_L2, LEVEL_LLC, LEVEL_DRAM):
            counts.record(level)
        assert (counts.l1, counts.l2, counts.llc, counts.dram) == (2, 1, 1, 1)
        assert counts.total == 5

    def test_record_rejects_unknown(self):
        with pytest.raises(ValueError):
            ServiceCounts().record(9)

    def test_llc_miss_rate(self):
        counts = ServiceCounts(l1=10, l2=5, llc=3, dram=7)
        assert counts.llc_miss_rate == pytest.approx(0.7)

    def test_miss_rates_of_empty_counts(self):
        counts = ServiceCounts()
        assert counts.llc_miss_rate == 0.0
        assert counts.l1_miss_rate == 0.0

    def test_l1_miss_rate(self):
        counts = ServiceCounts(l1=6, l2=2, llc=1, dram=1)
        assert counts.l1_miss_rate == pytest.approx(0.4)

    def test_merged(self):
        merged = ServiceCounts(1, 2, 3, 4).merged(ServiceCounts(4, 3, 2, 1))
        assert merged.as_dict() == {"l1": 5, "l2": 5, "llc": 5, "dram": 5}


class TestMemoryTraffic:
    def test_totals(self):
        traffic = MemoryTraffic(reads=3, writes=2, prefetch_reads=1)
        assert traffic.total_lines == 6
        assert traffic.total_bytes == 6 * 64

    def test_merged(self):
        merged = MemoryTraffic(1, 2).merged(MemoryTraffic(3, 4))
        assert merged.reads == 4
        assert merged.writes == 6

    def test_merge_rejects_line_size_mismatch(self):
        with pytest.raises(ValueError):
            MemoryTraffic(line_bytes=64).merged(MemoryTraffic(line_bytes=32))


class TestHierarchyConfig:
    def test_default_geometry(self):
        config = HierarchyConfig()
        assert config.sets("l1") == 4
        assert config.sets("l2") == 32
        assert config.sets("llc") == 128
        assert config.lines("llc") == 2048

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError, match="divisible"):
            HierarchyConfig(l1_bytes=1000)

    def test_reserved_ways_validated(self):
        with pytest.raises(ValueError, match="reserved"):
            HierarchyConfig(l1_reserved_ways=8)

    def test_with_reserved(self):
        config = HierarchyConfig().with_reserved(l1=7, l2=1, llc=15)
        assert config.l1_reserved_ways == 7
        assert config.llc_reserved_ways == 15

    def test_build_reference_applies_reservation(self):
        config = HierarchyConfig(l1_reserved_ways=4)
        hierarchy = config.build_reference()
        assert hierarchy.l1.usable_ways == 4
