"""Tests for miss-ratio curves."""

import numpy as np
import pytest

from repro.cache.mrc import miss_ratio_curve, working_set_lines


@pytest.fixture(scope="module")
def random_stream(rng):
    return rng.integers(0, 8000, size=40_000).tolist()


class TestMissRatioCurve:
    def test_monotone_in_cache_size(self, random_stream):
        rows = miss_ratio_curve(random_stream, sizes_kb=(32, 128, 512))
        ratios = [row["miss_ratio"] for row in rows]
        assert ratios[0] >= ratios[1] >= ratios[2]

    def test_oversized_cache_captures_working_set(self, random_stream):
        (row,) = miss_ratio_curve(random_stream, sizes_kb=(1024,))
        # 8000 lines = 500 KB fits a 1 MB LLC: only compulsory misses.
        assert row["dram_accesses"] <= working_set_lines(random_stream) * 1.05

    def test_tiny_cache_misses_heavily(self, random_stream):
        (row,) = miss_ratio_curve(random_stream, sizes_kb=(16,))
        assert row["miss_ratio"] > 0.8

    def test_streaming_never_benefits(self):
        stream = list(range(20_000))
        rows = miss_ratio_curve(stream, sizes_kb=(32, 512), is_write=False)
        # Pure streaming is all compulsory misses at any size.
        assert all(row["miss_ratio"] > 0.95 for row in rows)

    def test_small_range_stream_hits_upstream(self):
        rng = np.random.default_rng(4)
        stream = rng.integers(0, 64, size=10_000).tolist()
        rows = miss_ratio_curve(stream, sizes_kb=(64,))
        # 64 lines live in L1/L2; the LLC barely sees lookups, and the
        # few it does are compulsory.
        assert rows[0]["dram_accesses"] <= 64

    def test_max_events_cap(self, random_stream):
        rows = miss_ratio_curve(
            random_stream, sizes_kb=(64,), max_events=1_000
        )
        assert rows[0]["dram_accesses"] <= 1_000

    def test_invalid_size_rejected(self, random_stream):
        with pytest.raises(ValueError):
            miss_ratio_curve(random_stream, sizes_kb=(0,))


class TestWorkingSet:
    def test_counts_distinct_lines(self):
        assert working_set_lines([1, 1, 2, 5, 2]) == 3
