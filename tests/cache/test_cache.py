"""Tests for a single cache level."""

import pytest

from repro.cache import Cache


@pytest.fixture
def cache():
    # 4 sets x 4 ways x 64 B lines = 1 KiB, true LRU for predictability.
    return Cache("L1", 1024, 4, 64, policy="lru")


class TestGeometry:
    def test_sets(self, cache):
        assert cache.num_sets == 4

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError, match="divisible"):
            Cache("L1", 1000, 4, 64)


class TestProbeAndFill:
    def test_miss_then_hit(self, cache):
        assert not cache.probe(10)
        cache.fill(10)
        assert cache.probe(10)
        assert cache.hits == 1
        assert cache.misses == 1

    def test_set_conflict_eviction(self, cache):
        # Lines 0, 4, 8, ... share set 0; a fifth fill evicts the LRU one.
        for line in (0, 4, 8, 12):
            cache.fill(line)
        evicted = cache.fill(16)
        assert evicted is not None
        assert evicted.line == 0
        assert not cache.contains(0)

    def test_fill_existing_refreshes(self, cache):
        for line in (0, 4, 8, 12):
            cache.fill(line)
        cache.fill(0)  # refresh: line 4 becomes LRU
        evicted = cache.fill(16)
        assert evicted.line == 4

    def test_dirty_flag_tracked(self, cache):
        cache.fill(10, dirty=True)
        evicted = None
        for line in (14, 18, 22, 26):
            evicted = cache.fill(line) or evicted
        assert evicted.line == 10
        assert evicted.dirty

    def test_write_probe_dirties(self, cache):
        cache.fill(10)
        cache.probe(10, is_write=True)
        evictions = cache.flush()
        assert [e.line for e in evictions] == [10]

    def test_invalidate(self, cache):
        cache.fill(7, dirty=True)
        eviction = cache.invalidate(7)
        assert eviction.dirty
        assert cache.invalidate(7) is None


class TestWayReservation:
    def test_reserved_ways_shrink_capacity(self, cache):
        cache.reserve_ways(2)
        for line in (0, 4, 8):
            cache.fill(line)
        # Only 2 usable ways now: line 0 must have been displaced.
        assert not cache.contains(0)

    def test_reservation_evicts_resident_lines(self):
        cache = Cache("L1", 1024, 4, 64, policy="lru")
        for line in (0, 4, 8, 12):
            cache.fill(line, dirty=True)
        evictions = cache.reserve_ways(3)
        assert len(evictions) == 3
        assert all(e.dirty for e in evictions)

    def test_release_reservation(self, cache):
        cache.reserve_ways(2)
        cache.reserve_ways(0)
        assert cache.usable_ways == 4

    def test_full_reservation_rejected(self, cache):
        with pytest.raises(ValueError):
            cache.reserve_ways(4)


class TestMaintenance:
    def test_flush_empties(self, cache):
        cache.fill(1)
        cache.fill(2, dirty=True)
        evictions = cache.flush()
        assert cache.resident_lines() == []
        assert [e.line for e in evictions] == [2]

    def test_reset_stats(self, cache):
        cache.probe(1)
        cache.reset_stats()
        assert cache.accesses == 0
