"""Tests for CSR sparse matrices."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import COOMatrix, CSRMatrix, random_sparse


@pytest.fixture
def tiny():
    # [[0 1 0], [0 0 2], [3 0 0]]
    return CSRMatrix(
        indptr=np.array([0, 1, 2, 3]),
        indices=np.array([1, 2, 0]),
        data=np.array([1.0, 2.0, 3.0]),
        num_cols=3,
    )


class TestConstruction:
    def test_shape(self, tiny):
        assert tiny.shape == (3, 3)
        assert tiny.nnz == 3

    def test_bad_indptr_rejected(self):
        with pytest.raises(ValueError, match="indptr"):
            CSRMatrix(np.array([1, 2]), np.array([0, 0]), np.ones(2), 3)

    def test_column_range_checked(self):
        with pytest.raises(ValueError, match="column"):
            CSRMatrix(np.array([0, 1]), np.array([7]), np.ones(1), 3)

    def test_row_access(self, tiny):
        cols, vals = tiny.row(1)
        assert np.array_equal(cols, [2])
        assert np.array_equal(vals, [2.0])


class TestProducts:
    def test_matvec(self, tiny):
        x = np.array([1.0, 2.0, 3.0])
        assert np.allclose(tiny.matvec(x), tiny.to_dense() @ x)

    def test_rmatvec(self, tiny):
        x = np.array([1.0, 2.0, 3.0])
        assert np.allclose(tiny.rmatvec(x), tiny.to_dense().T @ x)

    def test_matvec_shape_checked(self, tiny):
        with pytest.raises(ValueError):
            tiny.matvec(np.ones(5))

    def test_products_agree_on_random_matrix(self, rng):
        matrix = random_sparse(40, 30, 200, seed=9).to_csr()
        x = rng.standard_normal(30)
        y = rng.standard_normal(40)
        assert np.allclose(matrix.matvec(x), matrix.to_dense() @ x)
        assert np.allclose(matrix.rmatvec(y), matrix.to_dense().T @ y)


class TestTranspose:
    def test_dense_agreement(self):
        matrix = random_sparse(25, 35, 150, seed=10).to_csr()
        assert np.allclose(matrix.transpose().to_dense(), matrix.to_dense().T)

    def test_double_transpose(self):
        matrix = random_sparse(20, 20, 80, seed=11).to_csr()
        assert np.allclose(
            matrix.transpose().transpose().to_dense(), matrix.to_dense()
        )


class TestFromCoo:
    def test_row_order_is_stable(self):
        # Duplicate rows keep COO entry order within the row.
        coo = COOMatrix([1, 0, 1], [5, 2, 3], [1.0, 2.0, 3.0], (2, 6))
        csr = CSRMatrix.from_coo(coo)
        cols, vals = csr.row(1)
        assert np.array_equal(cols, [5, 3])
        assert np.array_equal(vals, [1.0, 3.0])

    @given(st.integers(0, 60))
    @settings(max_examples=20, deadline=None)
    def test_round_trip_any_size(self, nnz):
        if nnz == 0:
            return
        coo = random_sparse(8, 8, min(nnz, 64), seed=nnz)
        csr = coo.to_csr()
        assert np.allclose(csr.to_dense(), coo.to_dense())

    def test_canonical_sorts_columns(self):
        coo = COOMatrix([0, 0], [3, 1], [1.0, 2.0], (1, 4))
        canonical = CSRMatrix.from_coo(coo).canonical()
        assert np.array_equal(canonical.indices, [1, 3])
        assert np.array_equal(canonical.data, [2.0, 1.0])
