"""Tests for sparse-matrix generators."""

import numpy as np
import pytest

from repro.sparse import (
    poisson2d,
    random_permutation,
    random_sparse,
    random_symmetric,
)


class TestPoisson2d:
    def test_shape_and_nnz(self):
        coo = poisson2d(8, seed=1)
        assert coo.shape == (64, 64)
        # 5-point stencil: n diagonal + 2 per interior adjacency.
        assert coo.nnz == 64 + 2 * (2 * 8 * 7)

    def test_symmetric(self):
        dense = poisson2d(6, seed=2).to_dense()
        assert np.allclose(dense, dense.T)

    def test_diagonally_dominant(self):
        dense = poisson2d(5, seed=3).to_dense()
        off_diag = np.abs(dense).sum(axis=1) - np.abs(np.diag(dense))
        assert np.all(np.diag(dense) >= off_diag)

    def test_unshuffled_is_deterministic_structure(self):
        a = poisson2d(4, shuffle=False)
        b = poisson2d(4, shuffle=False)
        assert np.allclose(a.to_dense(), b.to_dense())

    def test_shuffle_is_a_relabeling(self):
        plain = poisson2d(5, shuffle=False).to_dense()
        shuffled = poisson2d(5, seed=4, shuffle=True).to_dense()
        assert np.allclose(sorted(plain.sum(axis=1)), sorted(shuffled.sum(axis=1)))


class TestRandomSparse:
    def test_distinct_coordinates(self):
        coo = random_sparse(20, 20, 100, seed=5)
        coords = set(zip(coo.rows.tolist(), coo.cols.tolist()))
        assert len(coords) == 100

    def test_nnz_capacity_checked(self):
        with pytest.raises(ValueError, match="capacity"):
            random_sparse(2, 2, 5, seed=1)


class TestRandomSymmetric:
    def test_symmetric(self):
        dense = random_symmetric(30, 60, seed=6).to_dense()
        assert np.allclose(dense, dense.T)

    def test_upper_count(self):
        coo = random_symmetric(50, 40, seed=7)
        assert coo.upper_triangular().nnz == 40


class TestRandomPermutation:
    def test_is_permutation(self):
        perm = random_permutation(100, seed=8)
        assert np.array_equal(np.sort(perm), np.arange(100))

    def test_deterministic(self):
        assert np.array_equal(
            random_permutation(50, seed=9), random_permutation(50, seed=9)
        )
