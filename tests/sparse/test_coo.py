"""Tests for COO sparse matrices."""

import numpy as np
import pytest

from repro.sparse import COOMatrix


@pytest.fixture
def tiny_coo():
    return COOMatrix(
        rows=np.array([0, 1, 2, 0]),
        cols=np.array([1, 2, 0, 2]),
        vals=np.array([1.0, 2.0, 3.0, 4.0]),
        shape=(3, 3),
    )


class TestConstruction:
    def test_nnz(self, tiny_coo):
        assert tiny_coo.nnz == 4

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            COOMatrix([0], [1, 2], [1.0], (3, 3))

    def test_row_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="row"):
            COOMatrix([5], [0], [1.0], (3, 3))

    def test_col_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="column"):
            COOMatrix([0], [9], [1.0], (3, 3))

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            COOMatrix([0], [0], [1.0], (3,))


class TestOperations:
    def test_to_dense(self, tiny_coo):
        dense = tiny_coo.to_dense()
        assert dense[0, 1] == 1.0
        assert dense[0, 2] == 4.0
        assert dense[2, 0] == 3.0

    def test_to_dense_sums_duplicates(self):
        coo = COOMatrix([0, 0], [0, 0], [1.0, 2.0], (1, 1))
        assert coo.to_dense()[0, 0] == 3.0

    def test_transpose(self, tiny_coo):
        t = tiny_coo.transpose()
        assert np.array_equal(t.to_dense(), tiny_coo.to_dense().T)

    def test_transpose_swaps_shape(self):
        coo = COOMatrix([0], [1], [1.0], (2, 5))
        assert coo.transpose().shape == (5, 2)

    def test_upper_triangular(self, tiny_coo):
        upper = tiny_coo.upper_triangular()
        assert np.all(upper.cols >= upper.rows)
        assert upper.nnz == 3  # drops the (2, 0) entry

    def test_to_csr_round_trip(self, tiny_coo):
        assert np.array_equal(
            tiny_coo.to_csr().to_dense(), tiny_coo.to_dense()
        )
