"""Public-API surface tests: exports resolve and the package is coherent."""

import importlib

import pytest

import repro

PACKAGES = [
    "repro.api",
    "repro.baselines",
    "repro.cache",
    "repro.core",
    "repro.cpu",
    "repro.des",
    "repro.dram",
    "repro.graphs",
    "repro.harness",
    "repro.harness.experiments",
    "repro.noc",
    "repro.pb",
    "repro.sparse",
    "repro.workloads",
]


def test_version():
    assert repro.__version__


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    assert package.__all__, package_name
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name} missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_has_no_duplicates(package_name):
    package = importlib.import_module(package_name)
    assert len(set(package.__all__)) == len(package.__all__)


@pytest.mark.parametrize("package_name", PACKAGES)
def test_public_items_documented(package_name):
    package = importlib.import_module(package_name)
    assert package.__doc__
    for name in package.__all__:
        item = getattr(package, name)
        if callable(item) or isinstance(item, type):
            assert item.__doc__, f"{package_name}.{name} lacks a docstring"
