"""Tests for the shared helpers in repro._util."""

import numpy as np
import pytest

from repro._util import (
    as_index_array,
    check_positive,
    check_power_of_two,
    is_power_of_two,
    next_power_of_two,
    rng_from_seed,
)


class TestRng:
    def test_seed_reproducible(self):
        a = rng_from_seed(5).integers(0, 100, 10)
        b = rng_from_seed(5).integers(0, 100, 10)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(1)
        assert rng_from_seed(rng) is rng

    def test_none_allowed(self):
        assert rng_from_seed(None) is not None


class TestCheckPositive:
    def test_accepts_positive_ints(self):
        assert check_positive("x", 5) == 5
        assert check_positive("x", np.int64(3)) == 3

    def test_rejects_zero_and_negative(self):
        for bad in (0, -1):
            with pytest.raises(ValueError, match="x must be positive"):
                check_positive("x", bad)

    def test_rejects_non_ints(self):
        with pytest.raises(TypeError):
            check_positive("x", 1.5)
        with pytest.raises(TypeError):
            check_positive("x", True)  # bools are not sizes


class TestPowersOfTwo:
    @pytest.mark.parametrize("value,expected", [
        (1, True), (2, True), (1024, True), (3, False), (0, False), (-4, False),
    ])
    def test_is_power_of_two(self, value, expected):
        assert is_power_of_two(value) is expected

    def test_check_power_of_two(self):
        assert check_power_of_two("x", 64) == 64
        with pytest.raises(ValueError, match="power of two"):
            check_power_of_two("x", 100)

    @pytest.mark.parametrize("value,expected", [
        (1, 1), (2, 2), (3, 4), (5, 8), (1023, 1024), (1024, 1024),
    ])
    def test_next_power_of_two(self, value, expected):
        assert next_power_of_two(value) == expected

    def test_next_power_of_two_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            next_power_of_two(0)


class TestAsIndexArray:
    def test_coerces_lists(self):
        arr = as_index_array([1, 2, 3])
        assert arr.dtype == np.int64

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            as_index_array([[1], [2]])

    def test_empty_ok(self):
        assert len(as_index_array([])) == 0
