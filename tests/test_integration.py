"""End-to-end integration: kernels through the COBRA hardware path.

The strongest correctness claim in the paper (Section III-B) is that PB —
and hence COBRA — preserves kernel semantics given only *unordered
parallelism*. These tests push real kernel update streams through the full
CobraMachine (binupdate → hierarchical evictions → binflush), replay the
memory bins as an Accumulate phase would, and compare against the direct
execution. COBRA's interleaving differs from software PB's within each
bin, so the non-commutative kernels check *semantic* equality.
"""

import numpy as np
import pytest

from repro.core import CobraConfig, CobraMachine
from repro.graphs import CSRGraph, rmat
from repro.workloads import DegreeCount, NeighborPopulate, Pagerank, Radii


@pytest.fixture(scope="module")
def edges():
    return rmat(1 << 12, 1 << 15, seed=77)


def run_through_cobra(workload, values=None):
    """Bin a workload's update stream through the COBRA machine."""
    config = CobraConfig(
        num_indices=workload.num_indices, tuple_bytes=workload.tuple_bytes
    )
    machine = CobraMachine(config).bininit()
    stream_values = (
        values
        if values is not None
        else (
            workload.update_values
            if workload.update_values is not None
            else np.ones(workload.num_updates, dtype=np.int64)
        )
    )
    machine.binupdate_many(
        workload.update_indices.tolist(), list(stream_values)
    )
    machine.binflush()
    return machine


def replay_bins(machine):
    """The Accumulate phase: walk bins in order, yield (index, value)."""
    for bin_tuples in machine.memory_bins.bins:
        yield from bin_tuples


class TestCommutativeKernels:
    def test_degree_count(self, edges):
        workload = DegreeCount(edges)
        machine = run_through_cobra(workload)
        degrees = np.zeros(workload.num_indices, dtype=np.int64)
        for index, value in replay_bins(machine):
            degrees[index] += value
        assert np.array_equal(degrees, workload.run_reference())

    def test_pagerank(self, edges):
        from repro.graphs import build_csr

        workload = Pagerank(build_csr(edges))
        machine = run_through_cobra(workload)
        raw = np.zeros(workload.num_indices)
        for index, value in replay_bins(machine):
            raw[index] += value
        scores = workload._finalize(raw)
        assert np.allclose(scores, workload.run_reference())

    def test_radii(self, edges):
        from repro.graphs import build_csr

        workload = Radii(build_csr(edges), seed=9)
        machine = run_through_cobra(workload)
        visited = workload.visited.copy()
        for index, value in replay_bins(machine):
            visited[index] |= value
        assert np.array_equal(visited, workload.run_reference())


class TestNonCommutativeKernels:
    def test_neighbor_populate_semantic_equality(self, edges):
        """COBRA's bin-internal order differs from the stream order, so
        the built CSR differs bit-wise but must be semantically equal
        (identical per-vertex neighbor sets)."""
        workload = NeighborPopulate(edges)
        machine = run_through_cobra(workload)
        cursor = workload.offsets[:-1].copy().tolist()
        neighbors = np.empty(edges.num_edges, dtype=np.int64)
        applied = 0
        for src, dst in replay_bins(machine):
            slot = cursor[src]
            neighbors[slot] = dst
            cursor[src] = slot + 1
            applied += 1
        assert applied == edges.num_edges
        built = CSRGraph(workload.offsets, neighbors)
        reference = workload.run_reference()
        assert np.array_equal(
            built.canonical_sorted().neighbors,
            reference.canonical_sorted().neighbors,
        )

    def test_bin_locality_invariant(self, edges):
        """Every bin's updates stay within its index range — the property
        Accumulate's cache locality rests on."""
        workload = NeighborPopulate(edges)
        machine = run_through_cobra(workload)
        shift = machine.levels[2].shift
        for bin_id, bin_tuples in enumerate(machine.memory_bins.bins):
            assert all(index >> shift == bin_id for index, _ in bin_tuples)
