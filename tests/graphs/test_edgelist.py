"""Tests for the edge-list representation."""

import numpy as np
import pytest

from repro.graphs import EdgeList


class TestConstruction:
    def test_basic(self, tiny_edges):
        assert tiny_edges.num_edges == 6
        assert tiny_edges.num_vertices == 4
        assert len(tiny_edges) == 6

    def test_arrays_coerced_to_int64(self):
        edges = EdgeList([0, 1], [1, 0], 2)
        assert edges.src.dtype == np.int64
        assert edges.dst.dtype == np.int64

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            EdgeList([0, 1], [1], 2)

    def test_out_of_range_src_rejected(self):
        with pytest.raises(ValueError, match="src"):
            EdgeList([0, 5], [1, 1], 2)

    def test_out_of_range_dst_rejected(self):
        with pytest.raises(ValueError, match="dst"):
            EdgeList([0, 1], [1, -1], 2)

    def test_non_positive_vertices_rejected(self):
        with pytest.raises(ValueError):
            EdgeList([], [], 0)

    def test_empty_edge_list_allowed(self):
        edges = EdgeList([], [], 3)
        assert edges.num_edges == 0

    def test_two_dimensional_rejected(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            EdgeList([[0, 1]], [[1, 0]], 2)


class TestTransforms:
    def test_reversed_swaps_endpoints(self, tiny_edges):
        rev = tiny_edges.reversed()
        assert np.array_equal(rev.src, tiny_edges.dst)
        assert np.array_equal(rev.dst, tiny_edges.src)

    def test_reversed_is_a_copy(self, tiny_edges):
        rev = tiny_edges.reversed()
        rev.src[0] = 3
        assert tiny_edges.dst[0] == 1

    def test_shuffled_preserves_edge_multiset(self, tiny_edges, rng):
        shuffled = tiny_edges.shuffled(rng)
        original = sorted(zip(tiny_edges.src, tiny_edges.dst))
        after = sorted(zip(shuffled.src, shuffled.dst))
        assert original == after

    def test_repr_mentions_sizes(self, tiny_edges):
        assert "num_edges=6" in repr(tiny_edges)
