"""Tests for Edgelist-to-CSR conversion (the reference kernels)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    EdgeList,
    build_csr,
    count_degrees,
    populate_neighbors,
    prefix_sum,
)


class TestCountDegrees:
    def test_tiny(self, tiny_edges):
        assert np.array_equal(count_degrees(tiny_edges), [2, 1, 2, 1])

    def test_counts_sum_to_edges(self, small_edges):
        assert count_degrees(small_edges).sum() == small_edges.num_edges

    def test_isolated_vertices_counted_as_zero(self):
        edges = EdgeList([0], [1], 5)
        degrees = count_degrees(edges)
        assert np.array_equal(degrees, [1, 0, 0, 0, 0])


class TestPrefixSum:
    def test_exclusive(self):
        assert np.array_equal(prefix_sum(np.array([2, 0, 3])), [0, 2, 2, 5])

    def test_empty(self):
        assert np.array_equal(prefix_sum(np.array([], dtype=np.int64)), [0])


class TestPopulateNeighbors:
    def test_matches_vectorized_build(self, small_edges):
        degrees = count_degrees(small_edges)
        offsets = prefix_sum(degrees)
        sequential = populate_neighbors(small_edges, offsets)
        vectorized = build_csr(small_edges).neighbors
        assert np.array_equal(sequential, vectorized)

    def test_preserves_edge_order_within_source(self):
        edges = EdgeList([1, 0, 1, 1], [5, 9, 7, 6], 10)
        csr = build_csr(edges)
        # Vertex 1's destinations must appear in edge-list order.
        assert np.array_equal(csr.neighbors_of(1), [5, 7, 6])


class TestBuildCSR:
    def test_round_trips_edges(self, small_edges):
        csr = build_csr(small_edges)
        rebuilt = sorted(zip(csr.edge_sources(), csr.neighbors))
        original = sorted(zip(small_edges.src, small_edges.dst))
        assert rebuilt == original

    @given(
        st.lists(
            st.tuples(st.integers(0, 15), st.integers(0, 15)),
            min_size=0,
            max_size=200,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_edge_multiset_preserved(self, pairs):
        src = np.array([p[0] for p in pairs], dtype=np.int64)
        dst = np.array([p[1] for p in pairs], dtype=np.int64)
        edges = EdgeList(src, dst, 16)
        csr = build_csr(edges)
        assert csr.num_edges == len(pairs)
        assert sorted(zip(csr.edge_sources(), csr.neighbors)) == sorted(pairs)
