"""Tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graphs import GENERATORS, mesh2d, rmat, uniform_random


class TestRmat:
    def test_shape(self):
        edges = rmat(1 << 10, 5000, seed=1)
        assert edges.num_vertices == 1024
        assert edges.num_edges == 5000

    def test_requires_power_of_two_vertices(self):
        with pytest.raises(ValueError, match="power of two"):
            rmat(1000, 100, seed=1)

    def test_deterministic_with_seed(self):
        a = rmat(256, 1000, seed=7)
        b = rmat(256, 1000, seed=7)
        assert np.array_equal(a.src, b.src)
        assert np.array_equal(a.dst, b.dst)

    def test_seeds_differ(self):
        a = rmat(256, 1000, seed=7)
        b = rmat(256, 1000, seed=8)
        assert not np.array_equal(a.src, b.src)

    def test_power_law_skew(self):
        # RMAT with GAP parameters produces a heavy-tailed out-degree
        # distribution: the max degree far exceeds the mean.
        edges = rmat(1 << 12, 1 << 15, seed=3)
        degrees = np.bincount(edges.src, minlength=edges.num_vertices)
        assert degrees.max() > 20 * degrees.mean()

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(ValueError, match="probabilities"):
            rmat(256, 100, seed=1, a=0.6, b=0.3, c=0.3)


class TestUniformRandom:
    def test_shape(self):
        edges = uniform_random(1000, 5000, seed=2)
        assert edges.num_vertices == 1000
        assert edges.num_edges == 5000

    def test_no_skew(self):
        edges = uniform_random(1 << 12, 1 << 15, seed=2)
        degrees = np.bincount(edges.src, minlength=edges.num_vertices)
        assert degrees.max() < 5 * max(degrees.mean(), 1)

    def test_deterministic_with_seed(self):
        a = uniform_random(100, 200, seed=5)
        b = uniform_random(100, 200, seed=5)
        assert np.array_equal(a.src, b.src)


class TestMesh2d:
    def test_bounded_degree(self):
        edges = mesh2d(20, seed=4)
        degrees = np.bincount(edges.src, minlength=edges.num_vertices)
        assert degrees.max() <= 4

    def test_edge_count(self):
        # side*(side-1) horizontal + vertical pairs, both directions.
        side = 10
        edges = mesh2d(side, seed=4)
        assert edges.num_edges == 4 * side * (side - 1)

    def test_symmetric(self):
        edges = mesh2d(6, seed=4)
        pairs = set(zip(edges.src.tolist(), edges.dst.tolist()))
        assert all((d, s) in pairs for s, d in pairs)


def test_registry_contains_all_generators():
    assert set(GENERATORS) == {"rmat", "uniform_random", "mesh2d"}
