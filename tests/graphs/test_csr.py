"""Tests for the CSR graph representation."""

import numpy as np
import pytest

from repro.graphs import CSRGraph


@pytest.fixture
def tiny_csr():
    # Vertex 0 -> {1, 2}, vertex 1 -> {0}, vertex 2 -> {}, vertex 3 -> {3}
    return CSRGraph(np.array([0, 2, 3, 3, 4]), np.array([1, 2, 0, 3]))


class TestConstruction:
    def test_counts(self, tiny_csr):
        assert tiny_csr.num_vertices == 4
        assert tiny_csr.num_edges == 4

    def test_offsets_must_start_at_zero(self):
        with pytest.raises(ValueError, match="start at 0"):
            CSRGraph(np.array([1, 2]), np.array([0, 0]))

    def test_offsets_must_end_at_num_edges(self):
        with pytest.raises(ValueError, match="end at len"):
            CSRGraph(np.array([0, 3]), np.array([0]))

    def test_decreasing_offsets_rejected(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            CSRGraph(np.array([0, 2, 1, 3]), np.array([0, 0, 0]))

    def test_neighbor_ids_validated(self):
        with pytest.raises(ValueError, match="outside range"):
            CSRGraph(np.array([0, 1]), np.array([5]))


class TestAccessors:
    def test_degree(self, tiny_csr):
        assert tiny_csr.degree(0) == 2
        assert tiny_csr.degree(2) == 0

    def test_degrees_matches_offsets(self, tiny_csr):
        assert np.array_equal(tiny_csr.degrees(), [2, 1, 0, 1])

    def test_neighbors_of(self, tiny_csr):
        assert np.array_equal(tiny_csr.neighbors_of(0), [1, 2])
        assert len(tiny_csr.neighbors_of(2)) == 0

    def test_edge_sources_expands_offsets(self, tiny_csr):
        assert np.array_equal(tiny_csr.edge_sources(), [0, 0, 1, 3])


class TestTranspose:
    def test_transpose_reverses_edges(self, tiny_csr):
        t = tiny_csr.transpose()
        # Edge 0->1 becomes 1->0, etc.
        assert np.array_equal(t.degrees(), [1, 1, 1, 1])
        assert t.neighbors_of(1)[0] == 0

    def test_double_transpose_is_identity(self, small_csr):
        double = small_csr.transpose().transpose()
        assert np.array_equal(
            double.canonical_sorted().neighbors,
            small_csr.canonical_sorted().neighbors,
        )
        assert np.array_equal(double.offsets, small_csr.offsets)

    def test_transpose_preserves_edge_count(self, small_csr):
        assert small_csr.transpose().num_edges == small_csr.num_edges


class TestCanonicalSorted:
    def test_sorts_each_neighborhood(self):
        csr = CSRGraph(np.array([0, 3, 3, 3]), np.array([2, 0, 1]))
        assert np.array_equal(csr.canonical_sorted().neighbors, [0, 1, 2])

    def test_idempotent(self, small_csr):
        once = small_csr.canonical_sorted()
        twice = once.canonical_sorted()
        assert np.array_equal(once.neighbors, twice.neighbors)
