"""Tests for the digest-pinned dataset ingester."""

import shutil
from pathlib import Path

import numpy as np
import pytest

from repro.graphs import ingest
from repro.graphs.ingest import (
    DATASETS,
    dataset_dir,
    fetch,
    load_dataset,
    natural_scale,
    parse_matrix_market,
    parse_snap,
    sha256_path,
)

MM_SYMMETRIC = """\
%%MatrixMarket matrix coordinate pattern symmetric
% a comment line
4 4 3
2 1
3 1
3 3
"""

MM_GENERAL = """\
%%MatrixMarket matrix coordinate real general
3 3 2
1 2 0.5
3 1 2.0
"""

SNAP_TEXT = """\
# Directed edge list with arbitrary ids
40 10
10 40
99 40
"""


class TestMatrixMarketParser:
    def test_symmetric_expands_both_directions(self):
        edges = parse_matrix_market(MM_SYMMETRIC)
        assert edges.num_vertices == 4
        # (2,1) and (3,1) expand; the (3,3) self-loop does not duplicate.
        assert list(edges.src) == [1, 0, 2, 0, 2]
        assert list(edges.dst) == [0, 1, 0, 2, 2]

    def test_general_keeps_direction_and_ignores_values(self):
        edges = parse_matrix_market(MM_GENERAL)
        assert list(edges.src) == [0, 2]
        assert list(edges.dst) == [1, 0]

    def test_missing_banner_rejected(self):
        with pytest.raises(ValueError, match="MatrixMarket"):
            parse_matrix_market("1 1 0\n")

    def test_entry_count_mismatch_rejected(self):
        bad = MM_SYMMETRIC.replace("4 4 3", "4 4 7")
        with pytest.raises(ValueError, match="declares 7"):
            parse_matrix_market(bad)

    def test_unsupported_symmetry_rejected(self):
        bad = MM_SYMMETRIC.replace("symmetric", "hermitian")
        with pytest.raises(ValueError, match="hermitian"):
            parse_matrix_market(bad)


class TestSnapParser:
    def test_ids_compact_in_first_appearance_order(self):
        edges = parse_snap(SNAP_TEXT)
        # 40 -> 0, 10 -> 1, 99 -> 2 (first appearance), comments skipped.
        assert edges.num_vertices == 3
        assert list(edges.src) == [0, 1, 2]
        assert list(edges.dst) == [1, 0, 0]

    def test_empty_file_rejected(self):
        with pytest.raises(ValueError, match="no edges"):
            parse_snap("# only comments\n")

    def test_bad_line_rejected(self):
        with pytest.raises(ValueError, match="bad SNAP edge"):
            parse_snap("42\n")


class TestVendoredDatasets:
    def test_karate_loads_offline(self):
        edges = load_dataset("KARATE")
        assert edges.num_vertices == 34
        assert edges.num_edges == 156  # 78 undirected, symmetric-expanded
        assert natural_scale(edges) == 6

    def test_florentine_loads_offline(self):
        edges = load_dataset("FLORENT")
        assert edges.num_vertices == 15
        assert edges.num_edges == 20
        assert natural_scale(edges) == 4

    def test_loads_are_cached(self):
        assert load_dataset("KARATE") is load_dataset("KARATE")

    def test_every_pin_matches_vendored_bytes(self):
        for spec in DATASETS.values():
            path = fetch(spec.name)
            assert sha256_path(path) == spec.sha256

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            fetch("NOPE")


class TestNaturalScale:
    def test_powers_round_up(self):
        class Edges:
            def __init__(self, n):
                self.num_vertices = n

        assert natural_scale(Edges(2)) == 1
        assert natural_scale(Edges(16)) == 4
        assert natural_scale(Edges(17)) == 5
        # Degenerate single-vertex graphs still get a positive scale.
        assert natural_scale(Edges(1)) == 1


class TestFetchResolution:
    @pytest.fixture()
    def offline(self, tmp_path, monkeypatch):
        """No vendored copies; dataset cache redirected into tmp_path."""
        monkeypatch.setattr(ingest, "_VENDOR_DIR", tmp_path / "novendor")
        monkeypatch.setenv("REPRO_DATASET_DIR", str(tmp_path / "cache"))
        return tmp_path

    def test_dataset_dir_honors_knob(self, offline, tmp_path):
        assert dataset_dir() == tmp_path / "cache"

    def test_cached_copy_resolves(self, offline):
        spec = DATASETS["KARATE"]
        real = Path(ingest.__file__).parent / "data" / spec.filename
        target = dataset_dir() / spec.filename
        shutil.copy(real, target)
        assert fetch("KARATE") == target

    def test_corrupted_cache_copy_rejected(self, offline):
        spec = DATASETS["KARATE"]
        target = dataset_dir() / spec.filename
        target.write_text("not the pinned bytes\n")
        with pytest.raises(ValueError, match="pinned sha256"):
            fetch("KARATE")

    def test_no_copy_and_no_url_is_filenotfound(self, offline):
        with pytest.raises(FileNotFoundError, match="no vendored or cached"):
            fetch("KARATE")

    def test_download_verifies_and_adopts(self, offline, tmp_path):
        spec = DATASETS["KARATE"]
        real = Path(ingest.__file__).parent / "data" / spec.filename
        source = tmp_path / "remote.mtx"
        shutil.copy(real, source)
        path = fetch("KARATE", environ_url=source.as_uri())
        assert path == dataset_dir() / spec.filename
        assert sha256_path(path) == spec.sha256

    def test_download_with_wrong_bytes_discarded(self, offline, tmp_path):
        source = tmp_path / "remote.mtx"
        source.write_text("tampered\n")
        with pytest.raises(ValueError, match="does not match the"):
            fetch("KARATE", environ_url=source.as_uri())
        # The partial download must not be adopted into the cache.
        spec = DATASETS["KARATE"]
        assert not (dataset_dir() / spec.filename).exists()
        assert not (dataset_dir() / (spec.filename + ".part")).exists()


class TestIngestedEdgesAreDeterministic:
    def test_karate_parse_is_stable(self):
        a = load_dataset("KARATE")
        b = parse_matrix_market(
            fetch("KARATE").read_text("utf-8")
        )
        assert np.array_equal(a.src, b.src)
        assert np.array_equal(a.dst, b.dst)
