"""Core analyzer machinery: suppression parsing, baseline ratchet,
root discovery, and the shipped baseline guard."""

import json

import pytest

from repro.analysis import BASELINE_NAME, run_lint, write_baseline
from repro.analysis.core import (
    SourceError,
    _parse_noqa,
    find_root,
    load_baseline,
)
from tests.analysis.conftest import REPO_ROOT, lint_findings

MUTABLE_DEFAULT = """\
    def collect(value, acc=[]):
        acc.append(value)
        return acc
    """


class TestNoqaParsing:
    def test_same_line_rule_list(self):
        table = _parse_noqa("x = 1  # repro: noqa[nondet]\n")
        assert table == {1: frozenset({"nondet"})}

    def test_multiple_rules(self):
        table = _parse_noqa("x = 1  # repro: noqa[nondet, worker-safety]\n")
        assert table[1] == frozenset({"nondet", "worker-safety"})

    def test_bare_noqa_suppresses_all_rules(self):
        table = _parse_noqa("x = 1  # repro: noqa\n")
        assert table[1] is None

    def test_empty_brackets_suppress_nothing(self):
        # noqa[] is most likely a typo'd rule list; the finding must fire.
        assert _parse_noqa("x = 1  # repro: noqa[]\n") == {}

    def test_comment_line_covers_next_code_line(self):
        text = (
            "# repro: noqa[nondet] long justification\n"
            "# continues on a second comment line\n"
            "x = 1\n"
        )
        table = _parse_noqa(text)
        assert table[1] == frozenset({"nondet"})
        assert table[3] == frozenset({"nondet"})
        assert 2 not in table

    def test_unrelated_comments_ignored(self):
        assert _parse_noqa("# plain comment\nx = 1  # noqa: E501\n") == {}


class TestBaselineRatchet:
    def test_baseline_excuses_existing_findings_only(self, mini_tree):
        root = mini_tree({"src/repro/core/collect.py": MUTABLE_DEFAULT})
        report = run_lint(root)
        assert len(report.new_findings) == 1

        write_baseline(root, report.findings)
        assert run_lint(root).ok

        # A *new* violation is not excused by the old baseline.
        extra = root / "src" / "repro" / "core" / "extra.py"
        extra.write_text("def f(acc={}):\n    return acc\n")
        report = run_lint(root)
        assert len(report.findings) == 2
        assert len(report.new_findings) == 1
        assert "extra.py" in report.new_findings[0].path

    def test_baseline_identity_survives_line_drift(self, mini_tree):
        root = mini_tree({"src/repro/core/collect.py": MUTABLE_DEFAULT})
        write_baseline(root, run_lint(root).findings)

        path = root / "src" / "repro" / "core" / "collect.py"
        path.write_text("# a new header comment\n" + path.read_text())
        report = run_lint(root)
        assert report.findings  # still present, on a shifted line
        assert report.ok  # ...but identity is line-free, so still excused

    def test_corrupt_baseline_version_rejected(self, mini_tree):
        root = mini_tree({})
        (root / BASELINE_NAME).write_text('{"version": 99, "findings": []}')
        with pytest.raises(ValueError, match="version"):
            load_baseline(root)


class TestRootDiscovery:
    def test_find_root_climbs_to_checkout(self, mini_tree):
        root = mini_tree({})
        nested = root / "src" / "repro" / "harness"
        nested.mkdir(parents=True, exist_ok=True)
        assert find_root(nested) == root

    def test_find_root_rejects_non_checkout(self, tmp_path):
        with pytest.raises(SourceError):
            find_root(tmp_path)


class TestShippedTree:
    """The gate the CI lint job enforces, as plain tests."""

    def test_repro_lint_runs_clean(self):
        report = run_lint(REPO_ROOT)
        assert report.new_findings == [], "\n".join(
            f.format() for f in report.new_findings
        )

    def test_shipped_baseline_parses_and_is_empty(self):
        path = REPO_ROOT / BASELINE_NAME
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["version"] == 1
        assert payload["findings"] == []

    def test_every_suppression_is_justified(self):
        # Suppressed findings must carry justification text after the
        # bracket — a bare marker hides a hazard without saying why.
        report = run_lint(REPO_ROOT)
        for finding in report.suppressed:
            source = REPO_ROOT / finding.path
            lines = source.read_text(encoding="utf-8").splitlines()
            window = "\n".join(lines[max(0, finding.line - 4): finding.line])
            marker = window[window.rindex("noqa["):]
            after_bracket = marker.split("]", 1)[1].strip()
            assert after_bracket, (
                f"{finding.path}:{finding.line} suppression has no "
                "justification text"
            )

    def test_shipped_tree_fires_rules_on_seeded_violation(self, mini_tree):
        # End-to-end sanity: the full rule registry still catches a
        # violation when run through the public entry point.
        root = mini_tree({"src/repro/core/collect.py": MUTABLE_DEFAULT})
        assert lint_findings(root, "nondet")
