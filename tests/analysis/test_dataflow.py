"""Taint-framework tests: labeled sources, summaries, attribute flows.

Driven through :class:`repro.analysis.dataflow.TaintAnalysis` with a
small custom spec (pinning the framework API) — the digest-flow rule's
end-to-end behaviour is covered in ``test_interprocedural_rules.py``.
"""

import ast

from repro.analysis import LintContext
from repro.analysis.dataflow import TaintAnalysis, TaintSpec, is_source


def _spec():
    """Sources: ``read_secret("NAME")`` calls. Sinks: ``leak`` calls."""

    def source_of_call(fn, call, raw):
        if raw.rsplit(".", 1)[-1] == "read_secret":
            if call.args and isinstance(call.args[0], ast.Constant):
                return f"secret:{call.args[0].value}"
            return "secret:?"
        return None

    def source_of_subscript(fn, sub, raw):
        return None

    def sink_label(qname, raw):
        tail = raw.rsplit(".", 1)[-1]
        return "leak" if tail == "leak" else None

    return TaintSpec(
        name="test",
        source_of_call=source_of_call,
        source_of_subscript=source_of_subscript,
        sink_label=sink_label,
    )


def run_taint(root):
    graph = LintContext(root).callgraph()
    return TaintAnalysis(graph, _spec()).run()


def test_is_source_distinguishes_labels_from_params():
    assert is_source("<secret:X>")
    assert not is_source("param_name")


def test_direct_flow_reports_source_label(mini_tree):
    root = mini_tree(
        {
            "src/repro/app.py": """
            from repro.io import leak, read_secret

            def go():
                value = read_secret("TOKEN")
                leak(value)
            """,
            "src/repro/io.py": """
            def read_secret(name):
                return name

            def leak(value):
                return value
            """,
        }
    )
    hits = run_taint(root)
    assert len(hits) == 1
    hit = hits[0]
    assert hit.sink == "leak"
    assert hit.sources == ("secret:TOKEN",)
    assert hit.function == "repro.app.go"


def test_helper_mediated_flow_records_via_chain(mini_tree):
    root = mini_tree(
        {
            "src/repro/app.py": """
            from repro.helpers import wrapped
            from repro.io import leak

            def go():
                leak(wrapped())
            """,
            "src/repro/helpers.py": """
            from repro.io import read_secret

            def wrapped():
                return decorate(read_secret("KEY"))

            def decorate(value):
                return "v:" + value
            """,
            "src/repro/io.py": """
            def read_secret(name):
                return name

            def leak(value):
                return value
            """,
        }
    )
    hits = run_taint(root)
    assert len(hits) == 1
    hit = hits[0]
    # The secret travelled out of two helper summaries (read_secret ->
    # decorate -> wrapped) before reaching the sink in the caller.
    assert hit.sources == ("secret:KEY",)
    assert hit.function == "repro.app.go"


def test_taint_into_sinking_helper_records_via_chain(mini_tree):
    root = mini_tree(
        {
            "src/repro/app.py": """
            from repro.helpers import publish
            from repro.io import read_secret

            def go():
                publish(read_secret("KEY"))
            """,
            "src/repro/helpers.py": """
            from repro.io import leak

            def publish(value):
                leak(value)
            """,
            "src/repro/io.py": """
            def read_secret(name):
                return name

            def leak(value):
                return value
            """,
        }
    )
    hits = run_taint(root)
    assert len(hits) == 1
    hit = hits[0]
    assert hit.sources == ("secret:KEY",)
    # The flow crossed into publish()'s summary; the hit is reported at
    # the caller with the helper chain it traversed.
    assert "repro.helpers.publish" in hit.via


def test_untainted_values_stay_clean(mini_tree):
    root = mini_tree(
        {
            "src/repro/app.py": """
            from repro.io import leak, read_secret

            def go():
                secret = read_secret("TOKEN")
                del secret
                leak("a literal")
            """,
            "src/repro/io.py": """
            def read_secret(name):
                return name

            def leak(value):
                return value
            """,
        }
    )
    assert run_taint(root) == []


def test_sink_result_is_not_itself_taint(mini_tree):
    root = mini_tree(
        {
            "src/repro/app.py": """
            from repro.io import leak, read_secret

            def go():
                token = leak(read_secret("A"))
                leak(token)
            """,
            "src/repro/io.py": """
            def read_secret(name):
                return name

            def leak(value):
                return value
            """,
        }
    )
    # Only the first call leaks the secret; its return value is a digest
    # of taint, not taint, so the second call stays clean.
    assert len(run_taint(root)) == 1


def test_instance_attribute_carries_taint_across_methods(mini_tree):
    root = mini_tree(
        {
            "src/repro/app.py": """
            from repro.io import leak, read_secret

            class Holder:
                def __init__(self):
                    self._token = read_secret("HELD")

                def spill(self):
                    leak(self._token)
            """,
            "src/repro/io.py": """
            def read_secret(name):
                return name

            def leak(value):
                return value
            """,
        }
    )
    hits = run_taint(root)
    assert len(hits) == 1
    assert hits[0].sources == ("secret:HELD",)
    assert hits[0].function == "repro.app.Holder.spill"
