"""Call-graph construction tests on synthetic mini-checkouts.

The graph is built purely from source (``LintContext`` parses, never
imports), so each test lays out a tiny ``src/repro`` package exercising
one structural feature: call cycles, re-exported symbols, dynamic-call
fallback, spawn-site context classification, and lock discipline.
"""

from repro.analysis import LintContext

CLI_STUB = """
from repro.work import step

def main():
    step()
"""


def graph_for(root):
    return LintContext(root).callgraph()


class TestResolution:
    def test_call_cycle_terminates_and_resolves(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/cli.py": CLI_STUB,
                "src/repro/work.py": """
                def step():
                    return ping(3)

                def ping(n):
                    return pong(n - 1) if n else 0

                def pong(n):
                    return ping(n - 1) if n else 1
                """,
            }
        )
        graph = graph_for(root)
        # Mutual recursion must not hang propagation, and both sides of
        # the cycle inherit the entry point's context.
        assert graph.context_of("repro.work.ping") == frozenset({"main"})
        assert graph.context_of("repro.work.pong") == frozenset({"main"})
        assert graph.call_path("repro.cli.main", "repro.work.pong") == [
            "repro.cli.main",
            "repro.work.step",
            "repro.work.ping",
            "repro.work.pong",
        ]

    def test_reexported_symbol_resolves_to_definition(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/impl.py": """
                def helper():
                    return 42
                """,
                "src/repro/api.py": """
                from repro.impl import helper
                """,
                "src/repro/cli.py": """
                from repro.api import helper

                def main():
                    helper()
                """,
            }
        )
        graph = graph_for(root)
        # The import chain cli -> api -> impl is chased to the definition
        # (CallSite.raw is recorded alias-expanded).
        sites = list(graph.calls_by_caller["repro.cli.main"])
        assert [s.callee for s in sites] == ["repro.impl.helper"]
        assert graph.context_of("repro.impl.helper") == frozenset({"main"})

    def test_dynamic_call_falls_back_to_unknown(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/cli.py": """
                from repro.dispatch import run

                def main():
                    run("x")
                """,
                "src/repro/dispatch.py": """
                def target():
                    return 1

                HANDLERS = {"x": target}

                def run(key):
                    return HANDLERS[key]()
                """,
            }
        )
        graph = graph_for(root)
        # The dict dispatch is opaque: the call edge stays unresolved and
        # target, never reached by a resolved edge, is "unknown" — not a
        # silent wrong guess.
        dynamic = [
            s
            for s in graph.calls_by_caller["repro.dispatch.run"]
            if s.callee is None
        ]
        assert dynamic
        assert graph.context_of("repro.dispatch.target") == frozenset(
            {"unknown"}
        )


class TestContexts:
    def test_spawn_sites_classify_targets(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/cli.py": """
                import asyncio
                import signal
                import threading
                from repro.workers import (
                    handler, on_signal, pooled, threaded, unloaded
                )

                def main():
                    threading.Thread(target=threaded).start()
                    signal.signal(signal.SIGTERM, on_signal)

                async def serve(pool):
                    loop = asyncio.get_running_loop()
                    await loop.run_in_executor(None, unloaded)
                    pool.submit(pooled)
                    await handler()
                """,
                "src/repro/workers.py": """
                def threaded():
                    return shared()

                def on_signal(signum, frame):
                    return None

                def pooled():
                    return 0

                def unloaded():
                    return 0

                async def handler():
                    return shared()

                def shared():
                    return 1
                """,
            }
        )
        graph = graph_for(root)
        contexts = {
            name: graph.context_of(f"repro.workers.{name}")
            for name in (
                "threaded", "on_signal", "pooled", "unloaded", "handler"
            )
        }
        assert contexts["threaded"] == frozenset({"thread"})
        assert contexts["on_signal"] == frozenset({"signal"})
        assert "pool" in contexts["pooled"]
        assert "executor" in contexts["unloaded"]
        assert "async" in contexts["handler"]
        # shared() is reached from both the thread target and the async
        # handler: reachability unions the contexts.
        assert {"thread", "async"} <= set(
            graph.context_of("repro.workers.shared")
        )

    def test_async_roots_reaching_names_the_coroutine(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/cli.py": """
                from repro.svc import handle

                async def serve():
                    await handle()
                """,
                "src/repro/svc.py": """
                import os

                async def handle():
                    flush()

                def flush():
                    os.fsync(0)
                """,
            }
        )
        graph = graph_for(root)
        assert "async" in graph.context_of("repro.svc.flush")
        roots = graph.async_roots_reaching("repro.svc.flush")
        assert "repro.svc.handle" in roots


class TestLocks:
    def test_method_only_called_under_lock_is_always_locked(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/cli.py": """
                from repro.store import Store

                def main():
                    Store().bump()
                """,
                "src/repro/store.py": """
                import threading

                class Store:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._count = 0

                    def bump(self):
                        with self._lock:
                            self._inc()

                    def _inc(self):
                        self._count += 1
                """,
            }
        )
        graph = graph_for(root)
        assert "repro.store.Store._inc" in graph.always_locked
        assert "repro.store.Store.bump" not in graph.always_locked
        assert "_lock" in graph.classes["repro.store.Store"].lock_attrs
