"""Per-rule fixture tests: each rule fires on a seeded violation, stays
quiet when the violation is suppressed (``# repro: noqa[rule]``) or
allowlisted, and stays quiet on compliant code."""

from tests.analysis.conftest import lint_findings


class TestUnseededRandom:
    def test_unseeded_default_rng_flagged(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/cpu/jitter.py": """\
                    import numpy as np

                    def jitter():
                        return np.random.default_rng().random()
                    """
            }
        )
        findings = lint_findings(root, "unseeded-random")
        assert len(findings) == 1
        assert findings[0].path == "src/repro/cpu/jitter.py"
        assert "default_rng" in findings[0].message
        assert findings[0].hint  # every finding ships a fix hint

    def test_module_level_random_state_flagged(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/pb/shuffle.py": """\
                    import random

                    def pick(items):
                        return random.choice(items)
                    """
            }
        )
        findings = lint_findings(root, "unseeded-random")
        assert len(findings) == 1
        assert "module-level random state" in findings[0].message

    def test_seeded_constructors_clean(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/graphs/gen.py": """\
                    import random

                    import numpy as np

                    def generators(seed):
                        return np.random.default_rng(seed), random.Random(seed)
                    """
            }
        )
        assert lint_findings(root, "unseeded-random") == []

    def test_outside_checked_packages_ignored(self, mini_tree):
        # The harness may use wall-clock randomness (e.g. retry jitter);
        # the rule only polices the simulation subpackages.
        root = mini_tree(
            {
                "src/repro/harness/retry.py": """\
                    import random

                    def backoff():
                        return random.random()
                    """
            }
        )
        assert lint_findings(root, "unseeded-random") == []

    def test_suppressed_with_noqa(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/cpu/jitter.py": """\
                    import numpy as np

                    def jitter():
                        return np.random.default_rng().random()  # repro: noqa[unseeded-random] fixture
                    """
            }
        )
        assert lint_findings(root, "unseeded-random") == []


RUNNER_WITH_UNDIGESTED_PARAM = """\
    class Runner:
        def __init__(self, machine=None, max_sim_events=0, engine=None):
            self.machine = machine
            self.max_sim_events = max_sim_events
            self.engine = engine

        def _digest_params(self):
            return {"max_sim_events": self.max_sim_events}
    """


class TestDigestPurity:
    def test_undigested_runner_param_flagged(self, mini_tree):
        root = mini_tree(
            {"src/repro/harness/runner.py": RUNNER_WITH_UNDIGESTED_PARAM}
        )
        findings = lint_findings(root, "digest-purity")
        assert len(findings) == 1
        assert "'engine'" in findings[0].message
        assert "digest_exempt" in findings[0].message

    def test_allowlisted_runner_param_clean(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/harness/runner.py": RUNNER_WITH_UNDIGESTED_PARAM,
                "src/repro/analysis/digest_exempt.py": """\
                    DIGEST_EXEMPT = {
                        "Runner.engine": "engines are equivalence-tested",
                    }
                    """,
            }
        )
        assert lint_findings(root, "digest-purity") == []

    def test_empty_justification_flagged(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/harness/runner.py": RUNNER_WITH_UNDIGESTED_PARAM,
                "src/repro/analysis/digest_exempt.py": """\
                    DIGEST_EXEMPT = {
                        "Runner.engine": "",
                    }
                    """,
            }
        )
        findings = lint_findings(root, "digest-purity")
        assert any("empty" in f.message for f in findings)

    def test_stale_allowlist_entry_flagged(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/harness/runner.py": RUNNER_WITH_UNDIGESTED_PARAM,
                "src/repro/analysis/digest_exempt.py": """\
                    DIGEST_EXEMPT = {
                        "Runner.engine": "engines are equivalence-tested",
                        "Runner.ghost": "removed two PRs ago",
                    }
                    """,
            }
        )
        findings = lint_findings(root, "digest-purity")
        assert len(findings) == 1
        assert "stale" in findings[0].message
        assert "Runner.ghost" in findings[0].message

    def test_non_literal_allowlist_flagged(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/analysis/digest_exempt.py": """\
                    DIGEST_EXEMPT = dict(x="built dynamically")
                    """
            }
        )
        findings = lint_findings(root, "digest-purity")
        assert any("literal dict" in f.message for f in findings)

    def test_unallowlisted_env_knob_flagged(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/harness/cachecfg.py": """\
                    import os

                    def cache_dir():
                        return os.environ.get("REPRO_FIXTURE_DIR")
                    """
            }
        )
        findings = lint_findings(root, "digest-purity")
        assert len(findings) == 1
        assert "REPRO_FIXTURE_DIR" in findings[0].message


KNOBS_MODULE = """\
    KNOBS = {}

    def _knob(name, default, doc, reason):
        return (name, default, doc, reason)

    KNOBS["REPRO_FIXTURE_KNOB"] = _knob(
        "REPRO_FIXTURE_KNOB", None, "fixture", "fixture"
    )

    def read(name, environ=None):
        return None
    """


class TestKnobRegistry:
    def test_raw_environ_read_flagged(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/pb/tuning.py": """\
                    import os

                    def chunk():
                        return os.getenv("REPRO_FIXTURE_KNOB")
                    """
            }
        )
        findings = lint_findings(root, "knob-registry")
        messages = [f.message for f in findings]
        assert any("raw environment read" in m for m in messages)
        assert any("not registered" in m for m in messages)

    def test_registry_read_documented_clean(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/harness/knobs.py": KNOBS_MODULE,
                "src/repro/pb/tuning.py": """\
                    from repro.harness import knobs

                    def chunk():
                        return knobs.read("REPRO_FIXTURE_KNOB")
                    """,
                "src/repro/analysis/digest_exempt.py": """\
                    DIGEST_EXEMPT = {
                        "REPRO_FIXTURE_KNOB": "bit-exact by fixture decree",
                    }
                    """,
            },
            experiments="# knobs\n`REPRO_FIXTURE_KNOB` — fixture knob.\n",
        )
        assert lint_findings(root, "knob-registry") == []

    def test_registered_but_undocumented_flagged(self, mini_tree):
        # Regression shape for the real defect this rule caught on the
        # shipped tree: REPRO_RESULT_CACHE registered but absent from
        # EXPERIMENTS.md.
        root = mini_tree(
            {"src/repro/harness/knobs.py": KNOBS_MODULE},
            experiments="# knobs\n(nothing documented)\n",
        )
        findings = lint_findings(root, "knob-registry")
        assert len(findings) == 1
        assert findings[0].path == "src/repro/harness/knobs.py"
        assert "not documented in EXPERIMENTS.md" in findings[0].message

    def test_subscript_environ_read_flagged(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/dram/cfg.py": """\
                    import os

                    _NAME = "REPRO_FIXTURE_KNOB"

                    def rows():
                        return os.environ[_NAME]
                    """
            }
        )
        findings = lint_findings(root, "knob-registry")
        # Name resolved through the module-level string constant.
        assert any("REPRO_FIXTURE_KNOB" in f.message for f in findings)

    def test_non_repro_env_reads_ignored(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/harness/paths.py": """\
                    import os

                    def xdg():
                        return os.environ.get("XDG_CACHE_HOME")
                    """
            }
        )
        assert lint_findings(root, "knob-registry") == []


VECTOR_ONLY = """\
    class Predictor:
        def simulate_array(self, outcomes):
            return outcomes
    """

VECTOR_AND_SCALAR = """\
    class Predictor:
        def simulate(self, outcomes):
            return list(outcomes)

        def simulate_array(self, outcomes):
            return outcomes
    """


class TestBackendPairing:
    def test_missing_scalar_path_flagged(self, mini_tree):
        root = mini_tree({"src/repro/cpu/pred.py": VECTOR_ONLY})
        findings = lint_findings(root, "backend-pairing")
        assert len(findings) == 1
        assert "no scalar reference path" in findings[0].message

    def test_missing_equivalence_test_flagged(self, mini_tree):
        root = mini_tree({"src/repro/cpu/pred.py": VECTOR_AND_SCALAR})
        findings = lint_findings(root, "backend-pairing")
        assert len(findings) == 1
        assert "equivalence is unasserted" in findings[0].message

    def test_equivalence_test_satisfies_rule(self, mini_tree):
        root = mini_tree(
            {"src/repro/cpu/pred.py": VECTOR_AND_SCALAR},
            tests={
                "cpu/test_pred.py": """\
                    def test_backends_agree():
                        p = Predictor()
                        assert p.simulate_array([1]) == p.simulate([1])
                    """
            },
        )
        assert lint_findings(root, "backend-pairing") == []

    def test_suppressed_with_noqa(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/cpu/pred.py": """\
                    class Predictor:
                        # repro: noqa[backend-pairing] fixture: scalar twin
                        # lives out of tree
                        def simulate_array(self, outcomes):
                            return outcomes
                    """
            }
        )
        assert lint_findings(root, "backend-pairing") == []


JIT_KERNEL = """\
    from repro.cache.kernels import maybe_jit

    @maybe_jit
    def replay(stream):
        return stream
    """

ORACLE_KERNEL = """\
    SCALAR_ORACLE = "FastEngine"

    def replay(stream):
        return stream
    """


class TestCompiledKernelPairing:
    """The compiled-kernel arm of the ``backend-pairing`` rule."""

    def test_kernels_package_without_oracle_flagged(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/cache/kernels/fancy.py": """\
                    def replay(stream):
                        return stream
                    """
            }
        )
        findings = lint_findings(root, "backend-pairing")
        assert len(findings) == 1
        assert "names no scalar oracle" in findings[0].message

    def test_jit_decorated_module_without_oracle_flagged(self, mini_tree):
        """@maybe_jit marks a kernel module wherever it lives."""
        root = mini_tree({"src/repro/cpu/hotloop.py": JIT_KERNEL})
        findings = lint_findings(root, "backend-pairing")
        assert len(findings) == 1
        assert "names no scalar oracle" in findings[0].message

    def test_njit_call_decorator_recognized(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/cpu/hotloop.py": """\
                    import numba

                    @numba.njit(cache=True)
                    def replay(stream):
                        return stream
                    """
            }
        )
        findings = lint_findings(root, "backend-pairing")
        assert len(findings) == 1
        assert "names no scalar oracle" in findings[0].message

    def test_oracle_without_test_flagged(self, mini_tree):
        root = mini_tree({"src/repro/cache/kernels/fancy.py": ORACLE_KERNEL})
        findings = lint_findings(root, "backend-pairing")
        assert len(findings) == 1
        assert "equivalence is unasserted" in findings[0].message
        assert "FastEngine" in findings[0].message

    def test_module_stem_test_satisfies_rule(self, mini_tree):
        root = mini_tree(
            {"src/repro/des/fancy.py": ORACLE_KERNEL},
            tests={
                "des/test_fancy.py": """\
                    def test_matches_oracle():
                        from repro.des import fancy
                        assert fancy.replay([1]) == FastEngine().run([1])
                    """
            },
        )
        assert lint_findings(root, "backend-pairing") == []

    def test_kernels_package_test_satisfies_rule(self, mini_tree):
        """A suite exercising the kernels package as a whole counts for
        every module in it (tiers are selected behind one facade)."""
        root = mini_tree(
            {"src/repro/cache/kernels/fancy.py": ORACLE_KERNEL},
            tests={
                "cache/test_backends.py": """\
                    def test_all_tiers():
                        from repro.cache import kernels
                        assert kernels.select() == FastEngine()
                    """
            },
        )
        assert lint_findings(root, "backend-pairing") == []

    def test_package_init_exempt(self, mini_tree):
        """kernels/__init__.py is selection plumbing, not a kernel."""
        root = mini_tree(
            {
                "src/repro/cache/kernels/__init__.py": """\
                    def select_backend(name):
                        return name
                    """
            }
        )
        assert lint_findings(root, "backend-pairing") == []

    def test_self_declared_oracle_enforced_outside_kernels(self, mini_tree):
        """A module that declares SCALAR_ORACLE opts into the contract
        even without jit decorators (the DES fast loop's shape)."""
        root = mini_tree({"src/repro/des/flat.py": ORACLE_KERNEL})
        findings = lint_findings(root, "backend-pairing")
        assert len(findings) == 1
        assert "equivalence is unasserted" in findings[0].message


class TestNondetHazards:
    def test_mutable_default_argument_flagged(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/core/collect.py": """\
                    def collect(value, acc=[]):
                        acc.append(value)
                        return acc
                    """
            }
        )
        findings = lint_findings(root, "nondet")
        assert len(findings) == 1
        assert "mutable default argument" in findings[0].message

    def test_wall_clock_in_journal_module_flagged(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/harness/checkpoint.py": """\
                    import time

                    def stamp():
                        return {"created": time.time()}
                    """
            }
        )
        findings = lint_findings(root, "nondet")
        assert len(findings) == 1
        assert "time.time()" in findings[0].message

    def test_wall_clock_elsewhere_ignored(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/harness/watchdog.py": """\
                    import time

                    def now():
                        return time.time()
                    """
            }
        )
        assert lint_findings(root, "nondet") == []

    def test_id_keyed_memo_flagged(self, mini_tree):
        # Regression shape for the real defect this rule caught on the
        # shipped tree: the DES memo keyed by id(trace).
        root = mini_tree(
            {
                "src/repro/des/memo.py": """\
                    _MEMO = {}

                    def cached(trace):
                        return _MEMO.setdefault(id(trace), len(trace))
                    """
            }
        )
        findings = lint_findings(root, "nondet")
        assert len(findings) == 1
        assert "id()" in findings[0].message

    def test_float_equality_on_counter_flagged(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/noc/compare.py": """\
                    def same(a, b):
                        return a.cycles == b.cycles
                    """
            }
        )
        findings = lint_findings(root, "nondet")
        assert len(findings) == 1
        assert "float equality" in findings[0].message

    def test_set_iteration_flagged(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/sparse/order.py": """\
                    def rows(indices):
                        return [i for i in set(indices)]
                    """
            }
        )
        findings = lint_findings(root, "nondet")
        assert len(findings) == 1
        assert "iteration over a set" in findings[0].message

    def test_sorted_set_iteration_clean(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/sparse/order.py": """\
                    def rows(indices):
                        return [i for i in sorted(set(indices))]
                    """
            }
        )
        assert lint_findings(root, "nondet") == []

    def test_ts_subtraction_in_golden_module_flagged(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/golden/replay.py": """\
                    def elapsed(first, last):
                        return last["ts"] - first["ts"]
                    """
            }
        )
        findings = lint_findings(root, "nondet")
        assert len(findings) == 1
        assert "wall-clock subtraction" in findings[0].message

    def test_stamp_attribute_subtraction_flagged(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/golden/store.py": """\
                    def age(entry, other):
                        return entry.recorded - other.recorded
                    """
            }
        )
        findings = lint_findings(root, "nondet")
        assert len(findings) == 1
        assert "wall-clock subtraction" in findings[0].message
        assert ".recorded" in findings[0].message

    def test_time_time_subtraction_flagged_twice(self, mini_tree):
        # time.time() in a clock-sensitive module already trips the call
        # check; deriving a duration from it adds the subtraction finding.
        root = mini_tree(
            {
                "src/repro/golden/replay.py": """\
                    import time

                    def timed(start):
                        return time.time() - start
                    """
            }
        )
        messages = [f.message for f in lint_findings(root, "nondet")]
        assert any("wall-clock subtraction" in m for m in messages)

    def test_monotonic_subtraction_in_golden_module_clean(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/golden/replay.py": """\
                    import time

                    def timed(fn):
                        start = time.perf_counter()
                        fn()
                        return time.perf_counter() - start
                    """
            }
        )
        assert lint_findings(root, "nondet") == []

    def test_ts_subtraction_elsewhere_ignored(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/core/render.py": """\
                    def elapsed(first, last):
                        return last["ts"] - first["ts"]
                    """
            }
        )
        assert lint_findings(root, "nondet") == []

    def test_suppression_comment_above_line(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/harness/telemetry.py": """\
                    import time

                    def emit(event):
                        # repro: noqa[nondet] observability metadata only;
                        # never read back into digests
                        return {"event": event, "ts": time.time()}
                    """
            }
        )
        assert lint_findings(root, "nondet") == []


class TestWorkerSafety:
    def test_lambda_submission_flagged(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/harness/pool.py": """\
                    def run(pool):
                        return pool.submit(lambda: 1)
                    """
            }
        )
        findings = lint_findings(root, "worker-safety")
        assert len(findings) == 1
        assert "lambda" in findings[0].message

    def test_closure_submission_flagged(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/harness/pool.py": """\
                    def run(pool, point):
                        def work():
                            return point
                        return pool.submit(work)
                    """
            }
        )
        findings = lint_findings(root, "worker-safety")
        assert len(findings) == 1
        assert "not a module-level function" in findings[0].message

    def test_global_mutating_worker_flagged(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/harness/pool.py": """\
                    _SINK = None

                    def _work(point):
                        global _SINK
                        _SINK = point
                        return point

                    def run(pool, point):
                        return pool.submit(_work, point)
                    """
            }
        )
        findings = lint_findings(root, "worker-safety")
        assert len(findings) == 1
        assert "module-global state" in findings[0].message
        assert "_worker_init" in findings[0].hint

    def test_module_level_worker_and_initializer_clean(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/harness/pool.py": """\
                    from concurrent.futures import ProcessPoolExecutor

                    def _pool_worker_init():
                        pass

                    def _work(point):
                        return point

                    def run(points):
                        with ProcessPoolExecutor(
                            initializer=_pool_worker_init
                        ) as pool:
                            return [pool.submit(_work, p) for p in points]
                    """
            }
        )
        assert lint_findings(root, "worker-safety") == []

    def test_outside_harness_ignored(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/cache/pool.py": """\
                    def run(pool):
                        return pool.submit(lambda: 1)
                    """
            }
        )
        assert lint_findings(root, "worker-safety") == []


class TestServicePrefixCoverage:
    """The sweep service is clock-sensitive and worker-safety gated."""

    def test_wall_clock_subtraction_in_service_flagged(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/service/jobqueue.py": """\
                    import time

                    def age(record):
                        return time.time() - record.updated
                    """
            }
        )
        findings = lint_findings(root, "nondet")
        messages = [f.message for f in findings]
        assert any("wall-clock subtraction" in m for m in messages)

    def test_time_call_in_service_flagged(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/service/journal.py": """\
                    import time

                    def stamp():
                        return {"ts": time.time()}
                    """
            }
        )
        findings = lint_findings(root, "nondet")
        assert len(findings) == 1
        assert "time.time()" in findings[0].message

    def test_lambda_submission_in_service_flagged(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/service/jobqueue.py": """\
                    def run(pool):
                        return pool.submit(lambda: 1)
                    """
            }
        )
        findings = lint_findings(root, "worker-safety")
        assert len(findings) == 1
        assert "lambda" in findings[0].message

    def test_other_packages_keep_old_scope(self, mini_tree):
        # The service gate must not widen worker-safety to, say, cpu/.
        root = mini_tree(
            {
                "src/repro/cpu/pool.py": """\
                    def run(pool):
                        return pool.submit(lambda: 1)
                    """
            }
        )
        assert lint_findings(root, "worker-safety") == []


MINI_REGISTRY = """\
    REGISTERED_CLASSES = (
        "DegreeCount",
        "Histogram",
    )
    """


class TestWorkloadRegistry:
    def test_out_of_registry_construction_flagged(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/workloads/registry.py": MINI_REGISTRY,
                "src/repro/harness/adhoc.py": """\
                    from repro.workloads import DegreeCount

                    def point(edges):
                        return DegreeCount(edges)
                    """,
            }
        )
        findings = lint_findings(root, "workload-registry")
        assert len(findings) == 1
        assert findings[0].path == "src/repro/harness/adhoc.py"
        assert "DegreeCount" in findings[0].message
        assert "registry" in findings[0].hint

    def test_module_qualified_construction_flagged(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/workloads/registry.py": MINI_REGISTRY,
                "src/repro/harness/adhoc.py": """\
                    from repro.workloads import histogram

                    def point(keys):
                        return histogram.Histogram(keys, 64)
                    """,
            }
        )
        findings = lint_findings(root, "workload-registry")
        assert len(findings) == 1
        assert "Histogram" in findings[0].message

    def test_workloads_package_itself_exempt(self, mini_tree):
        # The registry's builders and kernel modules construct freely.
        root = mini_tree(
            {
                "src/repro/workloads/registry.py": """\
                    from repro.workloads.degree_count import DegreeCount

                    REGISTERED_CLASSES = (
                        "DegreeCount",
                        "Histogram",
                    )

                    def build(edges):
                        return DegreeCount(edges)
                    """,
            }
        )
        assert lint_findings(root, "workload-registry") == []

    def test_unregistered_classes_ignored(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/workloads/registry.py": MINI_REGISTRY,
                "src/repro/harness/other.py": """\
                    from repro.harness.runner import Runner

                    def runner():
                        return Runner()
                    """,
            }
        )
        assert lint_findings(root, "workload-registry") == []

    def test_suppressed_with_noqa(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/workloads/registry.py": MINI_REGISTRY,
                "src/repro/harness/adhoc.py": """\
                    from repro.workloads import DegreeCount

                    def point(edges):
                        return DegreeCount(edges)  # repro: noqa[workload-registry] fixture
                    """,
            }
        )
        assert lint_findings(root, "workload-registry") == []

    def test_raw_open_of_dataset_flagged(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/harness/loader.py": """\
                    def load():
                        with open("data/karate.mtx") as handle:
                            return handle.read()
                    """
            }
        )
        findings = lint_findings(root, "workload-registry")
        assert len(findings) == 1
        assert "karate.mtx" in findings[0].message
        assert "ingest" in findings[0].hint

    def test_read_text_of_dataset_flagged(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/harness/loader.py": """\
                    from pathlib import Path

                    def load():
                        return Path("web.snap").read_text()
                    """
            }
        )
        findings = lint_findings(root, "workload-registry")
        assert len(findings) == 1
        assert "web.snap" in findings[0].message

    def test_indirected_dataset_path_flagged(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/harness/loader.py": """\
                    _FIXTURE = "florentine.el"

                    def load():
                        return open(_FIXTURE).read()
                    """
            }
        )
        findings = lint_findings(root, "workload-registry")
        assert len(findings) == 1
        assert "florentine.el" in findings[0].message

    def test_ingest_module_exempt(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/graphs/ingest.py": """\
                    def load():
                        return open("data/karate.mtx").read()
                    """
            }
        )
        assert lint_findings(root, "workload-registry") == []

    def test_non_dataset_reads_ignored(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/harness/loader.py": """\
                    def load():
                        return open("README.md").read()
                    """
            }
        )
        assert lint_findings(root, "workload-registry") == []
