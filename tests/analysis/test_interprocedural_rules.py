"""Fixture tests for the three interprocedural rule families.

Each family gets a positive case (the defect fires), a suppressed case
(``# repro: noqa[rule]`` silences it with a justification), and a
clean/allowlisted case (the compliant pattern stays quiet).
"""

import textwrap

from repro.analysis import run_lint

from tests.analysis.conftest import lint_findings

IO_STUB = """
def read_secret(name):
    return name
"""


def suppressed(root, rule):
    report = run_lint(root)
    return [f for f in report.suppressed if f.rule == rule]


# ------------------------------------------------------------------ #
# concurrency-safety
# ------------------------------------------------------------------ #

SHARED_STATE_TREE = {
    "src/repro/cli.py": """
    import threading
    from repro.svc import Service

    def main():
        svc = Service()
        threading.Thread(target=svc.worker).start()
    """,
    "src/repro/svc.py": """
    import threading

    class Service:
        def __init__(self):
            self._lock = threading.Lock()
            self.count = 0

        def worker(self):
            self.count += 1{worker_noqa}

        def peek(self):
            {peek_body}
    """,
}


def _shared_state_tree(mini_tree, worker_noqa="", peek_body="return self.count"):
    files = dict(SHARED_STATE_TREE)
    files["src/repro/svc.py"] = files["src/repro/svc.py"].format(
        worker_noqa=worker_noqa, peek_body=peek_body
    )
    # peek() must be reachable from a second concurrent context; the
    # local constructor gives the resolver the receiver type.
    files["src/repro/server.py"] = """
    from repro.svc import Service

    async def handle():
        svc = Service()
        return svc.peek()
    """
    return mini_tree(files)


class TestSharedState:
    def test_unlocked_cross_context_attribute_fires(self, mini_tree):
        root = _shared_state_tree(mini_tree)
        findings = lint_findings(root, "concurrency-safety")
        assert any(
            "Service.count is written" in f.message
            and "without a consistent lock" in f.message
            for f in findings
        )

    def test_noqa_on_the_write_suppresses(self, mini_tree):
        root = _shared_state_tree(
            mini_tree,
            worker_noqa="  # repro: noqa[concurrency-safety] stats only",
        )
        assert suppressed(root, "concurrency-safety")
        assert not any(
            "Service.count" in f.message
            for f in lint_findings(root, "concurrency-safety")
        )

    def test_locked_accessor_is_clean(self, mini_tree):
        root = _shared_state_tree(
            mini_tree,
            worker_noqa="",
            peek_body="with self._lock:\n                return self.count",
        )
        # The worker's write is still unguarded, but let's guard it too
        # by checking the rule needs *both* sides: with the read locked
        # the remaining findings must not blame peek()'s line.
        findings = [
            f
            for f in lint_findings(root, "concurrency-safety")
            if "Service.count" in f.message
        ]
        for finding in findings:
            assert "self.count += 1" in (
                (root / finding.path).read_text().splitlines()[
                    finding.line - 1
                ]
            )


class TestBlockingOnLoop:
    def test_fsync_reachable_from_coroutine_fires(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/server.py": """
                from repro.disk import persist

                async def handle():
                    persist()
                """,
                "src/repro/disk.py": """
                import os

                def persist():
                    os.fsync(0)
                """,
            }
        )
        findings = lint_findings(root, "concurrency-safety")
        assert any(
            "blocking call os.fsync" in f.message
            and "event loop" in f.message
            for f in findings
        )

    def test_executor_hop_cuts_the_edge(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/server.py": """
                import asyncio
                from repro.disk import persist

                async def handle():
                    loop = asyncio.get_running_loop()
                    await loop.run_in_executor(None, persist)
                """,
                "src/repro/disk.py": """
                import os

                def persist():
                    os.fsync(0)
                """,
            }
        )
        assert not any(
            "blocking call" in f.message
            for f in lint_findings(root, "concurrency-safety")
        )


class TestSignalReentrancy:
    def test_lock_in_signal_handler_fires(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/cli.py": """
                import signal
                from repro.shutdown import on_signal

                def main():
                    signal.signal(signal.SIGTERM, on_signal)
                """,
                "src/repro/shutdown.py": """
                import threading

                _lock = threading.Lock()

                def on_signal(signum, frame):
                    with _lock:
                        return signum
                """,
            }
        )
        findings = lint_findings(root, "concurrency-safety")
        assert any(
            "acquires a lock" in f.message
            and "signal handler" in f.message
            for f in findings
        )

    def test_flag_only_handler_is_clean(self, mini_tree):
        root = mini_tree(
            {
                "src/repro/cli.py": """
                import signal
                from repro.shutdown import STATE, on_signal

                def main():
                    signal.signal(signal.SIGTERM, on_signal)
                    return STATE
                """,
                "src/repro/shutdown.py": """
                STATE = {"requested": False}

                def on_signal(signum, frame):
                    STATE["requested"] = True
                """,
            }
        )
        assert not lint_findings(root, "concurrency-safety")


# ------------------------------------------------------------------ #
# digest-flow
# ------------------------------------------------------------------ #

DIGEST_TREE = {
    "src/repro/digest.py": """
    def run_digest(*parts):
        return hash(parts)
    """,
    "src/repro/helpers.py": """
    import os

    def salt():
        return os.getenv("REPRO_SALT")
    """,
}


def _digest_tree(mini_tree, entry, extra=None):
    files = dict(DIGEST_TREE)
    files["src/repro/entry.py"] = entry
    files.update(extra or {})
    return mini_tree(files)


class TestDigestFlow:
    def test_env_through_helper_into_digest_fires(self, mini_tree):
        root = _digest_tree(
            mini_tree,
            """
            from repro.digest import run_digest
            from repro.helpers import salt

            def identity():
                return run_digest("machine", salt())
            """,
        )
        findings = lint_findings(root, "digest-flow")
        assert len(findings) == 1
        assert "env:REPRO_SALT" in findings[0].message
        assert "run_digest" in findings[0].message

    def test_noqa_on_the_sink_suppresses(self, mini_tree):
        root = _digest_tree(
            mini_tree,
            """
            from repro.digest import run_digest
            from repro.helpers import salt

            def identity():
                # repro: noqa[digest-flow] fixture: deliberate impurity
                return run_digest("machine", salt())
            """,
        )
        assert suppressed(root, "digest-flow")
        assert not lint_findings(root, "digest-flow")

    def test_allowlisted_knob_is_still_flagged_with_contradiction(
        self, mini_tree
    ):
        # The env value *flows into the digest*, so even a DIGEST_EXEMPT
        # entry doesn't silence the rule — it upgrades the message to a
        # contradiction (the allowlist claims it cannot affect digests).
        root = _digest_tree(
            mini_tree,
            """
            from repro.digest import run_digest
            from repro.helpers import salt

            def identity():
                return run_digest("machine", salt())
            """,
            extra={
                "src/repro/analysis/__init__.py": "",
                "src/repro/analysis/digest_exempt.py": """
                DIGEST_EXEMPT = {
                    "REPRO_SALT": "fixture: claims to never affect digests",
                }
                """,
            },
        )
        findings = lint_findings(root, "digest-flow")
        assert len(findings) == 1
        assert "digest-allowlisted" in findings[0].message

    def test_env_not_reaching_digest_is_clean(self, mini_tree):
        root = _digest_tree(
            mini_tree,
            """
            from repro.digest import run_digest
            from repro.helpers import salt

            def identity():
                level = salt()
                del level
                return run_digest("machine", "fixed")
            """,
        )
        assert not lint_findings(root, "digest-flow")


# ------------------------------------------------------------------ #
# telemetry-schema
# ------------------------------------------------------------------ #

EVENT_TABLE = """
# fixtures

| event | fields |
|---|---|
| `run_started` | `points`, `jobs` |
| `never_emitted` | `ghost` |
"""


def _telemetry_tree(mini_tree, body, experiments=EVENT_TABLE):
    return mini_tree(
        {
            "src/repro/emitter.py": textwrap.dedent(body),
        },
        experiments=experiments,
    )


class TestTelemetrySchema:
    def test_documented_event_and_fields_are_clean(self, mini_tree):
        root = _telemetry_tree(
            mini_tree,
            """
            def announce(telemetry):
                telemetry.emit("run_started", points=3, jobs=2)
            """,
            experiments="""
            | event | fields |
            |---|---|
            | `run_started` | `points`, `jobs` |
            """,
        )
        assert not lint_findings(root, "telemetry-schema")

    def test_undocumented_event_fires(self, mini_tree):
        root = _telemetry_tree(
            mini_tree,
            """
            def announce(telemetry):
                telemetry.emit("run_started", points=3, jobs=2)
                telemetry.emit("surprise", detail="?")
            """,
        )
        findings = lint_findings(root, "telemetry-schema")
        assert any("'surprise'" in f.message for f in findings)

    def test_undocumented_field_fires(self, mini_tree):
        root = _telemetry_tree(
            mini_tree,
            """
            def announce(telemetry):
                telemetry.emit("run_started", points=3, jobs=2, mood="?")
            """,
        )
        findings = lint_findings(root, "telemetry-schema")
        assert any(
            "field 'mood'" in f.message and "'run_started'" in f.message
            for f in findings
        )

    def test_documented_but_never_emitted_row_fires(self, mini_tree):
        root = _telemetry_tree(
            mini_tree,
            """
            def announce(telemetry):
                telemetry.emit("run_started", points=3, jobs=2)
            """,
        )
        findings = lint_findings(root, "telemetry-schema")
        stale = [f for f in findings if "'never_emitted'" in f.message]
        assert stale and stale[0].path == "EXPERIMENTS.md"

    def test_prefix_emission_covers_documented_rows(self, mini_tree):
        root = _telemetry_tree(
            mini_tree,
            """
            def transition(telemetry, state):
                telemetry.emit("job_" + state, job_id="j")
            """,
            experiments="""
            | event | fields |
            |---|---|
            | `job_completed` / `job_failed` | `job_id` |
            """,
        )
        assert not lint_findings(root, "telemetry-schema")

    def test_emit_timed_implicit_duration_fields_are_fine(self, mini_tree):
        root = _telemetry_tree(
            mini_tree,
            """
            def timed(telemetry):
                telemetry.emit_timed("run_started", 1.5, points=3, jobs=1)
            """,
            experiments="""
            | event | fields |
            |---|---|
            | `run_started` | `points`, `jobs` |
            """,
        )
        assert not lint_findings(root, "telemetry-schema")

    def test_no_event_table_stays_silent(self, mini_tree):
        root = _telemetry_tree(
            mini_tree,
            """
            def announce(telemetry):
                telemetry.emit("anything_goes", x=1)
            """,
            experiments="# no table here\n",
        )
        assert not lint_findings(root, "telemetry-schema")
