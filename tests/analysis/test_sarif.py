"""SARIF 2.1.0 export: log shape, baseline states, CLI wiring.

The log is validated with :mod:`jsonschema` against an embedded subset
of the official SARIF 2.1.0 schema — the structural requirements a
code-scanning consumer relies on (version const, tool.driver, result
locations) — so the test needs no network fetch of the 200 KB original.
"""

import json

import pytest

jsonschema = pytest.importorskip("jsonschema")

from repro.analysis import run_lint
from repro.analysis.sarif import SARIF_VERSION, sarif_log, write_sarif
from tests.analysis.test_cli import dirty_tree, run_cli

#: Structural core of the SARIF 2.1.0 schema (property names, required
#: fields, and types follow the OASIS sarif-schema-2.1.0.json).
SARIF_21_SUBSET_SCHEMA = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "version": {"const": "2.1.0"},
        "$schema": {"type": "string", "format": "uri"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "ruleIndex": {
                                    "type": "integer",
                                    "minimum": 0,
                                },
                                "level": {
                                    "enum": [
                                        "none",
                                        "note",
                                        "warning",
                                        "error",
                                    ]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                },
                                "baselineState": {
                                    "enum": [
                                        "new",
                                        "unchanged",
                                        "updated",
                                        "absent",
                                    ]
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "properties": {
                                                            "uri": {
                                                                "type": "string"
                                                            }
                                                        },
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            }
                                                        },
                                                    },
                                                },
                                            }
                                        },
                                    },
                                },
                                "suppressions": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "required": ["kind"],
                                        "properties": {
                                            "kind": {
                                                "enum": [
                                                    "inSource",
                                                    "external",
                                                ]
                                            }
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


@pytest.fixture
def dirty_report(tmp_path):
    return run_lint(dirty_tree(tmp_path))


def test_log_validates_against_sarif_21_schema(dirty_report):
    log = sarif_log(dirty_report)
    jsonschema.validate(log, SARIF_21_SUBSET_SCHEMA)
    assert log["version"] == SARIF_VERSION
    assert "2.1.0" in log["$schema"]


def test_new_findings_are_error_level_with_new_baseline_state(dirty_report):
    results = sarif_log(dirty_report)["runs"][0]["results"]
    assert results
    new = [r for r in results if r.get("baselineState") == "new"]
    assert new and all(r["level"] == "error" for r in new)
    location = new[0]["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"].endswith("collect.py")
    assert location["region"]["startLine"] >= 1


def test_rule_index_points_into_driver_rules(dirty_report):
    run = sarif_log(dirty_report)["runs"][0]
    rules = run["tool"]["driver"]["rules"]
    for result in run["results"]:
        assert rules[result["ruleIndex"]]["id"] == result["ruleId"]


def test_suppressed_findings_carry_in_source_suppression(tmp_path):
    root = dirty_tree(tmp_path)
    collect = root / "src" / "repro" / "core" / "collect.py"
    collect.write_text(
        "def collect(value, acc=[]):  # repro: noqa[nondet] fixture\n"
        "    return acc\n"
    )
    log = sarif_log(run_lint(root))
    jsonschema.validate(log, SARIF_21_SUBSET_SCHEMA)
    results = log["runs"][0]["results"]
    assert results
    assert all(
        r["suppressions"][0]["kind"] == "inSource" for r in results
    )


def test_write_sarif_round_trips(dirty_report, tmp_path):
    path = write_sarif(dirty_report, tmp_path / "out" / "lint.sarif")
    log = json.loads(path.read_text(encoding="utf-8"))
    jsonschema.validate(log, SARIF_21_SUBSET_SCHEMA)


class TestCli:
    def test_sarif_flag_writes_log_and_keeps_exit_code(self, tmp_path):
        root = dirty_tree(tmp_path)
        sarif_path = tmp_path / "lint.sarif"
        code, out = run_cli(
            ["lint", "--root", str(root), "--sarif", str(sarif_path)]
        )
        assert code == 1  # findings still gate
        assert f"wrote SARIF log to {sarif_path}" in out
        log = json.loads(sarif_path.read_text(encoding="utf-8"))
        jsonschema.validate(log, SARIF_21_SUBSET_SCHEMA)
        assert log["runs"][0]["results"]

    def test_sarif_on_clean_tree_has_no_error_results(self, tmp_path):
        root = dirty_tree(tmp_path)
        run_cli(["lint", "--root", str(root), "--baseline", "write"])
        sarif_path = tmp_path / "lint.sarif"
        code, _out = run_cli(
            ["lint", "--root", str(root), "--sarif", str(sarif_path)]
        )
        assert code == 0
        log = json.loads(sarif_path.read_text(encoding="utf-8"))
        results = log["runs"][0]["results"]
        # The baselined finding is still visible, downgraded to warning.
        assert all(r["level"] != "error" for r in results)
        assert any(r.get("baselineState") == "unchanged" for r in results)
