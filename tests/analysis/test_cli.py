"""The ``repro lint`` CLI: parser wiring, exit codes, --json payload,
and --baseline write."""

import json

from repro.cli import build_parser, main
from tests.analysis.conftest import REPO_ROOT

MUTABLE_DEFAULT = "def collect(value, acc=[]):\n    return acc\n"


def run_cli(argv):
    """Invoke the real CLI entry point, capturing printed lines."""
    lines = []
    code = main(argv, print_fn=lines.append)
    return code, "\n".join(str(line) for line in lines)


def dirty_tree(tmp_path):
    root = tmp_path / "tree"
    package = root / "src" / "repro" / "core"
    package.mkdir(parents=True)
    (root / "src" / "repro" / "__init__.py").write_text("")
    (package / "collect.py").write_text(MUTABLE_DEFAULT)
    return root


class TestParser:
    def test_lint_defaults(self):
        args = build_parser().parse_args(["lint"])
        assert args.command == "lint"
        assert args.root is None
        assert args.json is False
        assert args.baseline is None

    def test_lint_flags(self):
        args = build_parser().parse_args(
            ["lint", "--root", "/x", "--json", "--baseline", "write"]
        )
        assert args.root == "/x"
        assert args.json is True
        assert args.baseline == "write"


class TestExitCodes:
    def test_clean_on_shipped_tree(self):
        code, out = run_cli(["lint", "--root", str(REPO_ROOT)])
        assert code == 0, out
        assert "0 new finding(s)" in out

    def test_new_findings_exit_one(self, tmp_path):
        root = dirty_tree(tmp_path)
        code, out = run_cli(["lint", "--root", str(root)])
        assert code == 1
        assert "[nondet]" in out
        assert "collect.py" in out

    def test_unanalyzable_tree_exit_two(self, tmp_path):
        code, out = run_cli(["lint", "--root", str(tmp_path)])
        assert code == 2
        assert "repro lint:" in out


class TestJsonOutput:
    def test_payload_shape_on_shipped_tree(self):
        code, out = run_cli(["lint", "--json", "--root", str(REPO_ROOT)])
        assert code == 0
        payload = json.loads(out)
        assert payload["ok"] is True
        assert payload["new_findings"] == []
        assert len(payload["rules"]) == 10
        assert "workload-registry" in payload["rules"]
        assert "concurrency-safety" in payload["rules"]
        assert "digest-flow" in payload["rules"]
        assert "telemetry-schema" in payload["rules"]

    def test_findings_carry_location_and_hint(self, tmp_path):
        root = dirty_tree(tmp_path)
        code, out = run_cli(["lint", "--json", "--root", str(root)])
        assert code == 1
        payload = json.loads(out)
        (finding,) = payload["new_findings"]
        assert finding["rule"] == "nondet"
        assert finding["path"] == "src/repro/core/collect.py"
        assert finding["line"] == 1
        assert finding["hint"]


class TestBaselineWrite:
    def test_write_then_lint_is_clean(self, tmp_path):
        root = dirty_tree(tmp_path)
        code, out = run_cli(["lint", "--root", str(root), "--baseline", "write"])
        assert code == 0
        assert "wrote 1 finding(s)" in out

        payload = json.loads((root / "lint_baseline.json").read_text())
        assert payload["version"] == 1
        assert len(payload["findings"]) == 1

        code, _out = run_cli(["lint", "--root", str(root)])
        assert code == 0  # ratcheted: old finding excused, gate green

    def test_verbose_lists_baselined_findings(self, tmp_path):
        root = dirty_tree(tmp_path)
        run_cli(["lint", "--root", str(root), "--baseline", "write"])
        code, out = run_cli(["lint", "--root", str(root), "--verbose"])
        assert code == 0
        assert "(baselined)" in out

    def test_rewrite_prunes_stale_entries_and_reports_delta(self, tmp_path):
        root = dirty_tree(tmp_path)
        # Seed a baseline holding one live entry plus one stale entry for
        # a file that no longer exists.
        code, out = run_cli(["lint", "--root", str(root), "--baseline", "write"])
        assert code == 0
        payload = json.loads((root / "lint_baseline.json").read_text())
        payload["findings"].append(
            {
                "rule": "nondet",
                "path": "src/repro/core/deleted.py",
                "message": "an entry whose file was deleted long ago",
            }
        )
        (root / "lint_baseline.json").write_text(json.dumps(payload))

        code, out = run_cli(["lint", "--root", str(root), "--baseline", "write"])
        assert code == 0
        assert "ratchet delta: +0 added, -1 pruned, 1 kept" in out
        rewritten = json.loads((root / "lint_baseline.json").read_text())
        assert len(rewritten["findings"]) == 1
        assert not any(
            entry["path"] == "src/repro/core/deleted.py"
            for entry in rewritten["findings"]
        )

    def test_delta_counts_new_entries(self, tmp_path):
        root = dirty_tree(tmp_path)
        code, out = run_cli(["lint", "--root", str(root), "--baseline", "write"])
        assert code == 0
        assert "ratchet delta: +1 added, -0 pruned, 0 kept" in out
