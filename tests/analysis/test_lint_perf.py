"""Lint wall-clock smoke bound and the parsed-AST cache.

The ten-rule set (three of them interprocedural) must stay fast enough
to gate CI and pre-commit runs; the sha256-keyed AST cache guarantees
each distinct source is parsed once per process however many
``LintContext`` objects the suite builds.
"""

import time

from repro.analysis import LintContext, run_lint
from repro.analysis.core import ast_cache_stats
from tests.analysis.conftest import REPO_ROOT

#: Generous ceiling — the shipped tree lints in a few seconds on a
#: developer laptop; this bound only catches order-of-magnitude
#: regressions (e.g. reparsing per rule, quadratic propagation).
WALL_CLOCK_BOUND_S = 60.0


def test_shipped_tree_lints_inside_the_smoke_bound():
    start = time.monotonic()
    report = run_lint(REPO_ROOT)
    elapsed = time.monotonic() - start
    assert elapsed < WALL_CLOCK_BOUND_S, (
        f"repro lint took {elapsed:.1f}s (bound {WALL_CLOCK_BOUND_S}s)"
    )
    assert report.findings is not None  # the run actually happened


def test_second_context_hits_the_ast_cache(mini_tree):
    root = mini_tree(
        {
            "src/repro/a.py": "def fa():\n    return 1\n",
            "src/repro/b.py": "def fb():\n    return 2\n",
        }
    )
    LintContext(root)
    before = ast_cache_stats()
    LintContext(root)
    after = ast_cache_stats()
    # Identical text, identical sha256 keys: the rebuild parses nothing.
    assert after["misses"] == before["misses"]
    assert after["hits"] >= before["hits"] + 3  # __init__, a.py, b.py


def test_edited_file_misses_without_evicting_others(mini_tree):
    root = mini_tree(
        {
            "src/repro/a.py": "def fa():\n    return 1\n",
        }
    )
    LintContext(root)
    (root / "src" / "repro" / "a.py").write_text("def fa():\n    return 9\n")
    before = ast_cache_stats()
    LintContext(root)
    after = ast_cache_stats()
    assert after["misses"] == before["misses"] + 1  # only the edited file
