"""Fixture machinery for the ``repro lint`` analyzer tests.

The analyzer is purely static (it parses, never imports), so each test
builds a synthetic mini-checkout under ``tmp_path`` — a ``src/repro``
package plus optional ``tests/`` and ``EXPERIMENTS.md`` — seeds it with a
violation, and lints it with the real rule set.
"""

import textwrap
from pathlib import Path

import pytest

from repro.analysis import run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture()
def mini_tree(tmp_path):
    """Factory building a lintable mini-checkout.

    ``files`` maps checkout-relative paths to source text (dedented);
    ``tests`` maps paths under ``tests/``; ``experiments`` is the
    EXPERIMENTS.md body. Returns the checkout root.
    """

    def build(files, tests=None, experiments=""):
        root = tmp_path / "tree"
        package = root / "src" / "repro"
        package.mkdir(parents=True, exist_ok=True)
        (package / "__init__.py").write_text('"""fixture package."""\n')
        for rel, text in files.items():
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(text))
        for rel, text in (tests or {}).items():
            path = root / "tests" / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(text))
        (root / "EXPERIMENTS.md").write_text(experiments or "# fixtures\n")
        return root

    return build


def lint_findings(root, rule=None):
    """Active findings for the checkout at ``root`` (optionally one rule)."""
    report = run_lint(root)
    if rule is None:
        return report.findings
    return [f for f in report.findings if f.rule == rule]
