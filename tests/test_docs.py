"""Documentation consistency checks.

The three documents promise specific artifacts; these tests keep them
honest as the code evolves.
"""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).parent.parent


@pytest.fixture(scope="module")
def design():
    return (ROOT / "DESIGN.md").read_text()


@pytest.fixture(scope="module")
def experiments_md():
    return (ROOT / "EXPERIMENTS.md").read_text()


@pytest.fixture(scope="module")
def readme():
    return (ROOT / "README.md").read_text()


class TestDesignDoc:
    def test_confirms_paper_identity(self, design):
        assert "correct paper" in design
        assert "HPCA 2022" in design

    def test_every_inventory_package_exists(self, design):
        for match in re.findall(r"`repro\.[a-z_.]+`", design):
            module = match.strip("`")
            __import__(module)

    def test_benchmark_files_referenced_exist(self, design):
        for match in re.findall(r"benchmarks/test_[a-z0-9_]+\.py", design):
            assert (ROOT / match).exists(), match


class TestExperimentsDoc:
    def test_covers_every_paper_figure(self, experiments_md):
        for figure in ("Fig. 2", "Fig. 4a", "Fig. 4b", "Fig. 5", "Table I",
                       "Fig. 10", "Fig. 11", "Fig. 12", "Fig. 13a",
                       "Fig. 13b", "Fig. 13c", "Fig. 14", "Fig. 15",
                       "Table II", "Table III"):
            assert figure in experiments_md, figure

    def test_extension_benches_exist(self, experiments_md):
        for name in re.findall(r"`(ablation_[a-z_]+|scaling)`", experiments_md):
            assert (ROOT / "benchmarks" / f"test_{name}.py").exists() or (
                ROOT / "benchmarks" / f"test_{name}_extension.py"
            ).exists(), name

    def test_deviations_section_present(self, experiments_md):
        assert "deviations" in experiments_md.lower()


class TestReadme:
    def test_quickstart_commands_are_valid(self, readme):
        assert "pytest tests/" in readme
        assert "pytest benchmarks/ --benchmark-only" in readme
        assert "python -m repro" in readme

    def test_examples_listed_exist(self, readme):
        for name in ("quickstart", "graph_pipeline", "sparse_suite",
                     "tune_binning", "multicore_scaling"):
            assert name in readme
            assert (ROOT / "examples" / f"{name}.py").exists()

    def test_architecture_section_matches_tree(self, readme):
        for package in ("core/", "pb/", "cache/", "cpu/", "des/", "graphs/",
                        "sparse/", "workloads/", "baselines/", "noc/",
                        "harness/"):
            assert package in readme
            assert (ROOT / "src" / "repro" / package.rstrip("/")).is_dir()
