"""Sampling behaviour of the branch-site simulator."""

import numpy as np
import pytest

from repro.cpu import BranchSite, GSharePredictor, simulate_sites


class TestSampling:
    def test_max_simulated_caps_work_not_result_scale(self, rng):
        outcomes = rng.random(50_000) < 0.5
        site = BranchSite("r", 11, outcomes)
        capped = simulate_sites([site], GSharePredictor(), max_simulated=5_000)
        full = simulate_sites([site], GSharePredictor(), max_simulated=50_000)
        # Both estimates target the same dynamic count; rates agree within
        # sampling noise for a stationary stream.
        assert capped == pytest.approx(full, rel=0.15)

    def test_scaled_count_multiplies_rate(self, rng):
        outcomes = rng.random(10_000) < 0.5
        small = BranchSite("r", 11, outcomes, count=10_000)
        big = BranchSite("r", 11, outcomes, count=1_000_000)
        small_total = simulate_sites([small], GSharePredictor())
        big_total = simulate_sites([big], GSharePredictor())
        assert big_total == pytest.approx(small_total * 100, rel=0.01)

    def test_periodic_cbuffer_full_pattern_on_one_hot_bin(self):
        """A single hot bin fills every 8th insertion — a periodic branch
        GShare learns nearly perfectly (the easy case)."""
        outcomes = np.array([(i % 8) == 7 for i in range(8_000)])
        total = simulate_sites([BranchSite("full", 3, outcomes)])
        assert total / len(outcomes) < 0.02

    def test_interleaved_bins_defeat_the_predictor(self, rng):
        """Real PB interleaves hundreds of bins, so the full branch fires
        pseudo-randomly at rate 1/8 — this is what Figure 12 measures."""
        from repro.pb import BinSpec, CBufferModel

        indices = rng.integers(0, 1 << 14, size=30_000)
        model = CBufferModel(BinSpec(1 << 14, 64), tuple_bytes=8)
        outcomes = model.full_events(indices)
        total = simulate_sites([BranchSite("full", 3, outcomes)])
        rate = total / len(outcomes)
        assert 0.05 < rate < 0.25  # near the 1/8 firing probability
