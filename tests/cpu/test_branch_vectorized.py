"""Vectorized predictor kernel vs the scalar reference loop.

The scalar ``simulate`` loops are the oracle; ``simulate_array`` must be
bit-identical — same misprediction counts, same final counter table, same
final global history — on every stream, including streams that straddle
the internal sort-chunk boundary and interleavings across many sites.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.branch import (
    BRANCH_BACKENDS,
    BimodalPredictor,
    BranchSite,
    GSharePredictor,
    branch_backend,
    simulate_sites,
)
from repro.cpu.branch import _SORT_CHUNK


def _random_outcomes(rng, n, p=0.5):
    return rng.random(n) < p


def _assert_same_state(vec, ref):
    assert bytes(vec._counters) == bytes(ref._counters)
    if hasattr(vec, "_history"):
        assert vec._history == ref._history


class TestBimodalEquivalence:
    @pytest.mark.parametrize("n", [0, 1, 7, 8, 9, 1000])
    def test_lengths_around_pack_boundary(self, n):
        rng = np.random.default_rng(n)
        outcomes = _random_outcomes(rng, n)
        vec, ref = BimodalPredictor(), BimodalPredictor()
        assert vec.simulate_array(0x40, outcomes) == ref.simulate(
            0x40, outcomes.tolist()
        )
        _assert_same_state(vec, ref)

    @pytest.mark.parametrize("bias", [0.0, 0.05, 0.5, 0.95, 1.0])
    def test_biased_streams(self, bias):
        rng = np.random.default_rng(7)
        outcomes = _random_outcomes(rng, 5000, bias)
        vec, ref = BimodalPredictor(), BimodalPredictor()
        assert vec.simulate_array(0x1234, outcomes) == ref.simulate(
            0x1234, outcomes.tolist()
        )
        _assert_same_state(vec, ref)

    def test_repeated_calls_carry_state(self):
        rng = np.random.default_rng(11)
        vec, ref = BimodalPredictor(), BimodalPredictor()
        for trial in range(5):
            outcomes = _random_outcomes(rng, 317)
            assert vec.simulate_array(0x99, outcomes) == ref.simulate(
                0x99, outcomes.tolist()
            )
        _assert_same_state(vec, ref)

    def test_aliasing_pcs_share_an_entry(self):
        # pcs congruent mod table_size hit the same counter
        vec, ref = BimodalPredictor(table_size=64), BimodalPredictor(table_size=64)
        rng = np.random.default_rng(3)
        for pc in (5, 69, 133):
            outcomes = _random_outcomes(rng, 200)
            assert vec.simulate_array(pc, outcomes) == ref.simulate(
                pc, outcomes.tolist()
            )
        _assert_same_state(vec, ref)


class TestGShareEquivalence:
    @pytest.mark.parametrize("n", [0, 1, 2, 11, 12, 13, 100, 4096])
    def test_lengths_around_history_depth(self, n):
        rng = np.random.default_rng(n + 100)
        outcomes = _random_outcomes(rng, n)
        vec, ref = GSharePredictor(), GSharePredictor()
        assert vec.simulate_array(0x40, outcomes) == ref.simulate(
            0x40, outcomes.tolist()
        )
        _assert_same_state(vec, ref)

    @pytest.mark.parametrize(
        "n", [_SORT_CHUNK - 1, _SORT_CHUNK, _SORT_CHUNK + 1, _SORT_CHUNK + 7]
    )
    def test_sort_chunk_boundaries(self, n):
        rng = np.random.default_rng(n)
        outcomes = _random_outcomes(rng, n, 0.3)
        vec, ref = GSharePredictor(), GSharePredictor()
        assert vec.simulate_array(0xACE, outcomes) == ref.simulate(
            0xACE, outcomes.tolist()
        )
        _assert_same_state(vec, ref)

    @pytest.mark.parametrize("table_size,history_bits", [(64, 4), (256, 8), (16384, 12)])
    def test_small_tables_alias_heavily(self, table_size, history_bits):
        rng = np.random.default_rng(table_size)
        outcomes = _random_outcomes(rng, 3000, 0.6)
        vec = GSharePredictor(table_size, history_bits)
        ref = GSharePredictor(table_size, history_bits)
        assert vec.simulate_array(0x7abc, outcomes) == ref.simulate(
            0x7abc, outcomes.tolist()
        )
        _assert_same_state(vec, ref)

    def test_multi_site_interleaving_shares_table_and_history(self):
        # the paper's kernels run several static branches through one
        # predictor; state must thread through in call order
        rng = np.random.default_rng(21)
        vec, ref = GSharePredictor(), GSharePredictor()
        for trial in range(8):
            pc = int(rng.integers(0, 1 << 20))
            outcomes = _random_outcomes(rng, int(rng.integers(1, 800)))
            assert vec.simulate_array(pc, outcomes) == ref.simulate(
                pc, outcomes.tolist()
            )
            _assert_same_state(vec, ref)

    def test_nonzero_initial_history(self):
        rng = np.random.default_rng(5)
        warm = _random_outcomes(rng, 37)
        probe = _random_outcomes(rng, 500)
        vec, ref = GSharePredictor(), GSharePredictor()
        vec.simulate_array(0x10, warm)
        ref.simulate(0x10, warm.tolist())
        assert vec.simulate_array(0x20, probe) == ref.simulate(
            0x20, probe.tolist()
        )
        _assert_same_state(vec, ref)


@settings(max_examples=60, deadline=None)
@given(
    outcomes=st.lists(st.booleans(), max_size=600),
    pc=st.integers(min_value=0, max_value=(1 << 30) - 1),
)
def test_property_gshare_bit_identical(outcomes, pc):
    outcomes = np.asarray(outcomes, dtype=bool)
    vec, ref = GSharePredictor(), GSharePredictor()
    assert vec.simulate_array(pc, outcomes) == ref.simulate(pc, outcomes.tolist())
    assert bytes(vec._counters) == bytes(ref._counters)
    assert vec._history == ref._history


@settings(max_examples=60, deadline=None)
@given(
    outcomes=st.lists(st.booleans(), max_size=600),
    pc=st.integers(min_value=0, max_value=(1 << 30) - 1),
)
def test_property_bimodal_bit_identical(outcomes, pc):
    outcomes = np.asarray(outcomes, dtype=bool)
    vec, ref = BimodalPredictor(), BimodalPredictor()
    assert vec.simulate_array(pc, outcomes) == ref.simulate(pc, outcomes.tolist())
    assert bytes(vec._counters) == bytes(ref._counters)


@settings(max_examples=25, deadline=None)
@given(
    chunks=st.lists(st.lists(st.booleans(), max_size=120), min_size=2, max_size=6)
)
def test_property_gshare_split_calls_match_one_call(chunks):
    # simulate_array must carry counter + history state across calls
    # exactly as one long scalar replay would
    split, whole = GSharePredictor(), GSharePredictor()
    total_split = sum(
        split.simulate_array(0x5, np.asarray(chunk, dtype=bool))
        for chunk in chunks
    )
    flat = [bit for chunk in chunks for bit in chunk]
    total_whole = whole.simulate(0x5, flat)
    assert total_split == total_whole
    assert bytes(split._counters) == bytes(whole._counters)
    assert split._history == whole._history


class TestBackendDispatch:
    def test_backends_tuple(self):
        assert BRANCH_BACKENDS == ("vector", "scalar")

    def test_resolver_precedence(self, monkeypatch):
        monkeypatch.delenv("REPRO_BRANCH_BACKEND", raising=False)
        assert branch_backend() == "vector"
        monkeypatch.setenv("REPRO_BRANCH_BACKEND", "scalar")
        assert branch_backend() == "scalar"
        assert branch_backend("vector") == "vector"

    def test_resolver_rejects_unknown(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown branch backend"):
            branch_backend("simd")
        monkeypatch.setenv("REPRO_BRANCH_BACKEND", "turbo")
        with pytest.raises(ValueError, match="unknown branch backend"):
            branch_backend()

    def test_simulate_sites_backends_agree(self):
        rng = np.random.default_rng(13)
        sites = [
            BranchSite(
                name=f"b{i}",
                pc=0x400 + 64 * i,
                outcomes=_random_outcomes(rng, 2000, 0.4),
                count=50_000,
            )
            for i in range(4)
        ]
        vector = simulate_sites(sites, GSharePredictor(), backend="vector")
        scalar = simulate_sites(sites, GSharePredictor(), backend="scalar")
        assert vector == scalar

    def test_simulate_sites_env_knob(self, monkeypatch):
        rng = np.random.default_rng(17)
        sites = [
            BranchSite(name="b", pc=0x80, outcomes=_random_outcomes(rng, 500))
        ]
        monkeypatch.setenv("REPRO_BRANCH_BACKEND", "scalar")
        scalar = simulate_sites(sites, GSharePredictor())
        monkeypatch.setenv("REPRO_BRANCH_BACKEND", "vector")
        vector = simulate_sites(sites, GSharePredictor())
        assert scalar == vector

    def test_scalar_backend_without_simulate_array(self):
        # a predictor lacking simulate_array silently takes the scalar path
        class Plain:
            def __init__(self):
                self._inner = GSharePredictor()

            def simulate(self, pc, outcomes):
                return self._inner.simulate(pc, outcomes)

        rng = np.random.default_rng(19)
        sites = [
            BranchSite(name="b", pc=0x80, outcomes=_random_outcomes(rng, 300))
        ]
        assert simulate_sites(sites, Plain(), backend="vector") == simulate_sites(
            sites, GSharePredictor(), backend="scalar"
        )
