"""Tests for branch predictor models."""

import numpy as np
import pytest

from repro.cpu import BimodalPredictor, BranchSite, GSharePredictor, simulate_sites


class TestBimodal:
    def test_learns_always_taken(self):
        predictor = BimodalPredictor()
        mispredicts = predictor.simulate(0x400, [True] * 100)
        assert mispredicts <= 1  # initialized weakly taken

    def test_learns_never_taken(self):
        predictor = BimodalPredictor()
        mispredicts = predictor.simulate(0x400, [False] * 100)
        assert mispredicts <= 2

    def test_alternating_pattern_defeats_bimodal(self):
        predictor = BimodalPredictor()
        outcomes = [True, False] * 200
        mispredicts = predictor.simulate(0x400, outcomes)
        assert mispredicts > len(outcomes) * 0.4

    def test_invalid_table_size_rejected(self):
        with pytest.raises(ValueError):
            BimodalPredictor(table_size=1000)

    def test_predict_and_update_agrees_with_simulate(self):
        a = BimodalPredictor()
        b = BimodalPredictor()
        outcomes = [True, True, False, True, False, False] * 10
        stepwise = sum(
            0 if a.predict_and_update(0x40, taken) else 1 for taken in outcomes
        )
        assert stepwise == b.simulate(0x40, outcomes)


class TestGShare:
    def test_learns_periodic_pattern(self):
        # Period-4 pattern fits in 12 bits of history: near-zero misses
        # after warmup.
        predictor = GSharePredictor()
        outcomes = ([True, False, False, False] * 300)
        mispredicts = predictor.simulate(0x400, outcomes)
        assert mispredicts < len(outcomes) * 0.1

    def test_random_pattern_mispredicts_heavily(self, rng):
        predictor = GSharePredictor()
        outcomes = (rng.random(4000) < 0.5).tolist()
        mispredicts = predictor.simulate(0x400, outcomes)
        assert mispredicts > 1000

    def test_biased_random_rate_tracks_bias(self, rng):
        predictor = GSharePredictor()
        outcomes = (rng.random(8000) < 0.1).tolist()
        rate = predictor.simulate(0x400, outcomes) / 8000
        assert 0.03 < rate < 0.25

    def test_history_must_fit_table(self):
        with pytest.raises(ValueError):
            GSharePredictor(table_size=256, history_bits=10)

    def test_predict_and_update_agrees_with_simulate(self):
        a = GSharePredictor()
        b = GSharePredictor()
        outcomes = [True, False, True, True, False] * 20
        stepwise = sum(
            0 if a.predict_and_update(0x40, taken) else 1 for taken in outcomes
        )
        assert stepwise == b.simulate(0x40, outcomes)


class TestBranchSite:
    def test_count_defaults_to_length(self):
        site = BranchSite("s", 1, np.array([True, False]))
        assert site.count == 2

    def test_count_below_sample_rejected(self):
        with pytest.raises(ValueError):
            BranchSite("s", 1, np.array([True, False]), count=1)


class TestSimulateSites:
    def test_scales_sampled_outcomes(self):
        outcomes = np.array([True] * 100)
        site = BranchSite("always", 7, outcomes, count=10_000)
        total = simulate_sites([site])
        assert total < 10_000 * 0.05  # near-perfect prediction, scaled

    def test_empty_sites(self):
        assert simulate_sites([]) == 0.0

    def test_empty_outcomes_skipped(self):
        site = BranchSite("empty", 3, np.array([], dtype=bool))
        assert simulate_sites([site]) == 0.0

    def test_multiple_sites_accumulate(self, rng):
        a = BranchSite("a", 1, rng.random(1000) < 0.5)
        b = BranchSite("b", 2, rng.random(1000) < 0.5)
        both = simulate_sites([a, b])
        assert both > simulate_sites([BranchSite("a", 1, a.outcomes)]) * 1.5
