"""Tests for performance-counter aggregation."""

import pytest

from repro.cache import MemoryTraffic, ServiceCounts
from repro.cpu import PhaseCounters, RunCounters


@pytest.fixture
def run():
    counters = RunCounters(workload="w", mode="m")
    counters.phases.append(
        PhaseCounters(
            name="binning",
            instructions=1000,
            branches=100,
            branch_mispredicts=10.0,
            irregular_service=ServiceCounts(l1=50, dram=5),
            traffic=MemoryTraffic(reads=20, writes=4),
            cycles=500.0,
        )
    )
    counters.phases.append(
        PhaseCounters(
            name="accumulate",
            instructions=3000,
            branch_mispredicts=2.0,
            irregular_service=ServiceCounts(l1=200),
            traffic=MemoryTraffic(reads=10),
            cycles=1500.0,
        )
    )
    return counters


class TestPhaseCounters:
    def test_ipc(self):
        phase = PhaseCounters(name="p", instructions=100, cycles=50.0)
        assert phase.ipc == 2.0

    def test_ipc_zero_cycles(self):
        assert PhaseCounters(name="p").ipc == 0.0

    def test_mpki(self):
        phase = PhaseCounters(
            name="p", instructions=2000, branch_mispredicts=4.0
        )
        assert phase.mpki == 2.0

    def test_demand_service_combines_streams(self):
        phase = PhaseCounters(
            name="p",
            irregular_service=ServiceCounts(l1=5),
            streaming_service=ServiceCounts(dram=3),
        )
        assert phase.demand_service.total == 8


class TestRunCounters:
    def test_totals(self, run):
        assert run.cycles == 2000.0
        assert run.instructions == 4000
        assert run.branch_mispredicts == 12.0

    def test_phase_lookup(self, run):
        assert run.phase("binning").instructions == 1000
        with pytest.raises(KeyError):
            run.phase("missing")

    def test_has_phase(self, run):
        assert run.has_phase("accumulate")
        assert not run.has_phase("init")

    def test_traffic_aggregation(self, run):
        assert run.traffic.reads == 30
        assert run.traffic.writes == 4

    def test_irregular_service_aggregation(self, run):
        total = run.irregular_service
        assert total.l1 == 250
        assert total.dram == 5

    def test_run_mpki(self, run):
        assert run.mpki == pytest.approx(1000 * 12.0 / 4000)
