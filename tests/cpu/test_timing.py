"""Tests for the analytic core timing model."""

import pytest

from repro.cache import ServiceCounts
from repro.cpu import CoreParams, TimingModel


@pytest.fixture
def model():
    return TimingModel(CoreParams())


class TestPhaseTiming:
    def test_pure_compute(self, model):
        timing = model.phase_timing("t", 4000, ServiceCounts(), 0, 0)
        assert timing.total_cycles == pytest.approx(1000)

    def test_l1_hits_are_free_of_stall(self, model):
        timing = model.phase_timing(
            "t", 0, ServiceCounts(l1=10_000), 0, 0
        )
        assert timing.irregular_cycles == 0

    def test_dram_misses_dominate(self, model):
        params = model.params
        timing = model.phase_timing(
            "t", 0, ServiceCounts(dram=1000), 0, 0
        )
        expected = 1000 * params.dram_latency / params.mlp_irregular
        assert timing.irregular_cycles == pytest.approx(expected)

    def test_streaming_overlaps_compute(self, model):
        compute_only = model.phase_timing("t", 8000, ServiceCounts(), 0, 0)
        with_stream = model.phase_timing(
            "t", 8000, ServiceCounts(), 800, 0
        )
        # Streaming smaller than compute: fully hidden.
        assert with_stream.total_cycles == compute_only.total_cycles

    def test_streaming_bound_when_larger(self, model):
        timing = model.phase_timing("t", 100, ServiceCounts(), 80_000, 0)
        assert timing.total_cycles == pytest.approx(
            80_000 / model.params.stream_bytes_per_cycle
        )

    def test_branch_penalty_additive(self, model):
        base = model.phase_timing("t", 4000, ServiceCounts(), 0, 0)
        with_branches = model.phase_timing("t", 4000, ServiceCounts(), 0, 100)
        delta = with_branches.total_cycles - base.total_cycles
        assert delta == pytest.approx(100 * model.params.branch_penalty)

    def test_latency_ordering(self, model):
        l2 = model.phase_timing("t", 0, ServiceCounts(l2=100), 0, 0)
        llc = model.phase_timing("t", 0, ServiceCounts(llc=100), 0, 0)
        dram = model.phase_timing("t", 0, ServiceCounts(dram=100), 0, 0)
        assert l2.irregular_cycles < llc.irregular_cycles < dram.irregular_cycles


class TestCoreParams:
    def test_scaled_overrides(self):
        params = CoreParams().scaled(mlp_irregular=2.0)
        assert params.mlp_irregular == 2.0
        assert params.issue_width == CoreParams().issue_width

    def test_dram_latency_matches_80ns(self):
        params = CoreParams()
        assert params.dram_latency == pytest.approx(
            80e-9 * params.frequency_ghz * 1e9, rel=0.01
        )

    def test_ipc_helper(self, model):
        timing = model.phase_timing("t", 4000, ServiceCounts(), 0, 0)
        assert model.ipc(4000, timing) == pytest.approx(4.0)

    def test_seconds(self, model):
        timing = model.phase_timing("t", 2_660_000, ServiceCounts(), 0, 0)
        assert timing.seconds(2.66) == pytest.approx(
            timing.total_cycles / 2.66e9
        )
