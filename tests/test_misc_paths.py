"""Coverage for smaller code paths across packages."""

import pytest

from repro.cache import ServiceCounts
from repro.core import CobraCommMachine, CobraConfig
from repro.cpu import CoreParams, TimingModel
from repro.cpu.counters import PhaseCounters, RunCounters
from repro.des import Queue, Simulator, Timeout
from repro.harness.experiments.common import phase_cycles, shared_runner


class TestTimingSharedLlc:
    def test_remote_latency_applied(self):
        model = TimingModel(CoreParams())
        counts = ServiceCounts(llc=1000)
        local = model.phase_timing("t", 0, counts, 0, 0)
        remote = model.phase_timing("t", 0, counts, 0, 0, shared_llc=True)
        ratio = remote.irregular_cycles / local.irregular_cycles
        params = CoreParams()
        assert ratio == pytest.approx(
            params.llc_remote_latency / params.llc_latency
        )

    def test_shared_llc_leaves_other_levels_alone(self):
        model = TimingModel(CoreParams())
        counts = ServiceCounts(l2=500, dram=10)
        local = model.phase_timing("t", 0, counts, 0, 0)
        remote = model.phase_timing("t", 0, counts, 0, 0, shared_llc=True)
        assert local.irregular_cycles == remote.irregular_cycles


class TestReduceOps:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [("add", 3, 4, 7), ("or", 1, 4, 5), ("min", 3, 4, 3), ("max", 3, 4, 4)],
    )
    def test_named_reductions(self, op, a, b, expected):
        config = CobraConfig(num_indices=64, tuple_bytes=8)
        machine = CobraCommMachine(config, op).bininit()
        machine.binupdate(0, a)
        machine.binupdate(0, b)
        machine.binflush()
        (bin_tuples,) = [bin_ for bin_ in machine.memory_bins.bins if bin_]
        assert bin_tuples == [(0, expected)]

    def test_unknown_named_op_rejected(self):
        config = CobraConfig(num_indices=64, tuple_bytes=8)
        with pytest.raises(KeyError):
            CobraCommMachine(config, "xor").bininit()


class TestDesQueueDiscipline:
    def test_multiple_getters_served_fifo(self):
        sim = Simulator()
        queue = Queue()
        served = []

        def consumer(name):
            item = yield queue.get()
            served.append((name, item))

        def producer():
            yield Timeout(1)
            yield queue.put("x")
            yield queue.put("y")

        sim.process(consumer("first"))
        sim.process(consumer("second"))
        sim.process(producer())
        sim.run()
        assert served == [("first", "x"), ("second", "y")]

    def test_multiple_blocked_putters_release_in_order(self):
        sim = Simulator()
        queue = Queue(capacity=1)
        completed = []

        def putter(name):
            yield queue.put(name)
            completed.append(name)

        def drainer():
            for _ in range(3):
                yield Timeout(10)
                yield queue.get()

        for name in ("a", "b", "c"):
            sim.process(putter(name))
        sim.process(drainer())
        sim.run()
        assert completed == ["a", "b", "c"]


class TestExperimentCommon:
    def test_shared_runner_is_singleton(self):
        assert shared_runner() is shared_runner()

    def test_kwargs_make_fresh_runner(self):
        fresh = shared_runner(max_sim_events=123)
        assert fresh is not shared_runner()
        assert fresh.max_sim_events == 123

    def test_phase_cycles_missing_phase(self):
        counters = RunCounters(workload="w", mode="m")
        counters.phases.append(PhaseCounters(name="main", cycles=5.0))
        assert phase_cycles(counters, "main") == 5.0
        assert phase_cycles(counters, "absent") == 0.0


class TestWorkloadReprs:
    def test_repr_mentions_commutativity(self):
        from repro.graphs import EdgeList
        from repro.workloads import DegreeCount

        workload = DegreeCount(EdgeList([0], [1], 4))
        assert "commutative=True" in repr(workload)
