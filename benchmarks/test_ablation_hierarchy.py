"""Ablation: hierarchical C-Buffers vs a flat single-level design.

COBRA's key insight is decoupling the core-visible buffer count (few, L1)
from the in-memory bin count (many, LLC) via a *hierarchy* of C-Buffers.
The obvious simpler design — pin all C-Buffers in the LLC and have
binupdate write them directly — keeps the one-instruction ISA but pays an
LLC access per tuple. This bench quantifies what the hierarchy buys.
"""

from repro.core import costs
from repro.harness import modes
from repro.harness.experiments.common import ExperimentResult
from repro.harness.inputs import make_workload
from repro.harness.report import format_table
from repro.workloads.base import PhaseSpec, RegionSpec, Segment


def _flat_binning_phase(workload, cobra):
    """binupdate straight into LLC-pinned C-Buffers (no L1/L2 tiers)."""
    n = workload.num_updates
    bin_ids = cobra.memory_bin_spec.bins_of(workload.update_indices)
    cbuf_region = RegionSpec(
        f"{workload.name}.flat-cbuffers", 64, cobra.llc.num_buffers
    )
    per_line = cobra.tuples_per_line
    return PhaseSpec(
        name="binning",
        instructions=n * costs.COBRA_BIN_TUPLE_INSTRS,
        branches=n,
        branch_sites=workload.extra_branch_sites("binning"),
        segments=[Segment(cbuf_region, bin_ids, True)],
        streaming_bytes=n * workload.stream_bytes_per_update,
        hw_write_lines=-(-n // per_line),
        reserved_ways=(0, 0, cobra.llc_reserved_ways),
    )


def test_ablation_hierarchy(benchmark, runner, save_result):
    def run():
        rows = []
        for input_name in ("KRON", "URND"):
            workload = make_workload("neighbor-populate", input_name)
            cobra = runner.cobra_config(workload)
            hierarchical = runner.run(workload, modes.COBRA).phase("binning")
            flat = runner._simulate_phase(
                workload, _flat_binning_phase(workload, cobra), None
            )
            rows.append(
                {
                    "input": input_name,
                    "hierarchical_cycles": hierarchical.cycles,
                    "flat_cycles": flat.cycles,
                    "hierarchy_gain": flat.cycles / hierarchical.cycles,
                }
            )
        text = format_table(
            ["input", "hierarchical Mcyc", "flat Mcyc", "gain"],
            [
                [
                    r["input"],
                    r["hierarchical_cycles"] / 1e6,
                    r["flat_cycles"] / 1e6,
                    r["hierarchy_gain"],
                ]
                for r in rows
            ],
            title="Ablation: hierarchical vs flat (LLC-only) C-Buffers",
        )
        return ExperimentResult(name="ablation_hierarchy", rows=rows, text=text)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(result)
    # The hierarchy must pay for its eviction plumbing: flat binning that
    # touches the LLC per tuple is strictly slower.
    for row in result.rows:
        assert row["hierarchy_gain"] > 1.2
