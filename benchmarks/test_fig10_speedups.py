"""Figure 10 benchmark: the headline speedups.

Paper bands: PB-SW 1.81x mean over baseline, COBRA 3.16x over baseline,
1.74x over PB (up to 3.78x), and 1.2x/1.45x for the IDEAL decomposition.
Shape checks assert who wins and by roughly what factor.
"""

from repro.harness.experiments import fig10


def test_fig10_speedups(benchmark, runner, save_result):
    result = benchmark.pedantic(
        fig10.run, kwargs={"runner": runner}, rounds=1, iterations=1
    )
    save_result(result)
    extras = result.extras
    # Mean PB gain in the paper's neighbourhood (1.81x).
    assert 1.5 < extras["pb"] < 3.0
    # COBRA over baseline (paper: 3.16x).
    assert 2.5 < extras["cobra"] < 5.0
    # COBRA over PB (paper: 1.74x mean, 3.78x max).
    assert 1.4 < extras["cobra_over_pb"] < 2.2
    assert extras["max_cobra_over_pb"] < 4.0
    # Ordering holds pointwise: COBRA never loses to PB, PB never loses to
    # the baseline.
    for row in result.rows:
        assert row["cobra_speedup"] > row["pb_speedup"] > 1.0
    # SymPerm is the weakest COBRA beneficiary (limited locality headroom).
    symperm = [r for r in result.rows if r["workload"] == "symperm"]
    weakest = min(result.rows, key=lambda r: r["cobra_over_pb"])
    assert weakest["workload"] in ("symperm", "pinv", "radii")
    assert all(row["cobra_over_pb"] < extras["cobra_over_pb"] for row in symperm)
