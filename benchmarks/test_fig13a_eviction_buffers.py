"""Figure 13a benchmark: eviction-buffer sizing via the DES model."""

from repro.harness.experiments import fig13


def test_fig13a_eviction_buffers(benchmark, save_result):
    result = benchmark.pedantic(
        fig13.run_eviction_buffers, rounds=1, iterations=1
    )
    save_result(result)
    by_input = {}
    for row in result.rows:
        by_input.setdefault(row["input"], {})[row["queue_entries"]] = row
    for input_name, rows in by_input.items():
        # Stall fraction is monotonically non-increasing in FIFO size…
        sizes = sorted(rows)
        stalls = [rows[s]["stall_fraction"] for s in sizes]
        assert all(a >= b - 1e-9 for a, b in zip(stalls, stalls[1:]))
        # …and a 32-entry L1→L2 buffer hides eviction latency for every
        # input (the paper's headline sizing result).
        assert rows[32]["stall_fraction"] < 0.005, input_name
