"""Perf benchmark: compiled kernel backends vs the scalar reference paths.

Two measurements, recorded in ``benchmarks/results/BENCH_compiled_kernels.json``:

1. **End-to-end figure point** — a fig10-sized point (the figure's four
   modes on one graph) on the *unmodified* default machine, modern
   pipeline (batched engine + compiled kernels + chunked traces) vs the
   reference configuration (scalar trace engine + full materialization).
   Before this backend layer the default machine's hierarchy (DRRIP LLC +
   stream prefetch + reserved ways under COBRA) was exactly the
   configuration space ``BatchHierarchy.supports`` rejected, so every
   headline figure ran the scalar engine; the target is >= 5x end-to-end
   (CI enforces a 3x floor so a noisy shared runner doesn't flake the
   gate), with bit-identical counters.
2. **DES eviction loop** — the fig13a eviction-buffer study's inner
   simulation, generator engine (``run_reference``, the retained oracle)
   vs the flat loop (``run``, dispatched through the kernel backends to C
   when a compiler is present). Acceptance is fig13a wall-clock cut at
   least in half, i.e. >= 2x here, bit-identical.

Both comparisons assert exact equality: the backends are
equivalence-tested, so any drift is a bug, not noise.
"""

from __future__ import annotations

import pathlib
import resource
import time

import numpy as np

from repro.cache import BatchHierarchy
from repro.cache import kernels as kernel_backends
from repro.des.eviction_model import EvictionBufferModel, EvictionModelConfig
from repro.harness import Runner
from repro.harness.inputs import make_workload
from repro.harness.machine import DEFAULT_MACHINE
from repro.harness.modes import BASELINE, COBRA, PB_SW, PB_SW_IDEAL

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BENCH_PATH = RESULTS_DIR / "BENCH_compiled_kernels.json"

SCALE = 16
MODES = (BASELINE, PB_SW, PB_SW_IDEAL, COBRA)  # the fig10 mode set

# Reference = the pre-backend pipeline (scalar trace engine, full trace
# materialization); modern = the repo's defaults (batched engine + the
# best available kernel tier + chunked assembly). Same machine, same
# vector branch predictor — only this PR's layers differ.
REF_KWARGS = dict(engine="fast", trace_chunk=0)
NEW_KWARGS = dict(engine="auto")


def _run_pipeline(workload, kwargs):
    """Time one fig10-sized point; returns (seconds, results)."""
    runner = Runner(machine=DEFAULT_MACHINE, **kwargs)
    start = time.perf_counter()
    results = [runner.run(workload, mode, use_cache=False) for mode in MODES]
    return time.perf_counter() - start, results


def _timed_pipelines(workload, repeats=2):
    """Interleaved best-of-N timing keeps host noise off the ratio."""
    ref_seconds = new_seconds = float("inf")
    ref_results = new_results = None
    for _ in range(repeats):
        seconds, ref_results = _run_pipeline(workload, REF_KWARGS)
        ref_seconds = min(ref_seconds, seconds)
        seconds, new_results = _run_pipeline(workload, NEW_KWARGS)
        new_seconds = min(new_seconds, seconds)
    return ref_seconds, ref_results, new_seconds, new_results


def _des_bench(repeats=3):
    """The fig13a inner loop: generator oracle vs the flat DES loop.

    Sized like :func:`repro.harness.experiments.fig13.run_eviction_buffers`
    (40k-tuple trace, the paper's tight-loop rates, a shallow FIFO so the
    core genuinely stalls).
    """
    rng = np.random.default_rng(2026)
    cfg = EvictionModelConfig(
        num_indices=16384,
        l1_evict_queue=2,
        core_cycles_per_tuple=1.25,
        engine_cycles_per_tuple=1.0,
    )
    trace = rng.integers(0, cfg.num_indices, size=40_000).astype(np.int64)
    model = EvictionBufferModel(cfg)
    ref_seconds = new_seconds = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        reference = model.run_reference(trace)
        ref_seconds = min(ref_seconds, time.perf_counter() - start)
        start = time.perf_counter()
        fast = model.run(trace)
        new_seconds = min(new_seconds, time.perf_counter() - start)
    assert fast.total_cycles.hex() == reference.total_cycles.hex()
    assert fast.core_stall_cycles.hex() == reference.core_stall_cycles.hex()
    assert fast.evictions == reference.evictions
    assert fast.max_queue_occupancy == reference.max_queue_occupancy
    return {
        "trace_tuples": int(trace.size),
        "reference_seconds": ref_seconds,
        "fastloop_seconds": new_seconds,
        "speedup": ref_seconds / new_seconds,
        "stall_fraction": reference.stall_fraction,
    }


def test_perf_compiled_kernels(bench_history):
    # The whole point of the backend layer: the default machine — DRRIP,
    # prefetch, and every COBRA reserved-ways variant — is batchable now.
    assert BatchHierarchy.reject_reason(DEFAULT_MACHINE.hierarchy) is None

    workload = make_workload("degree-count", "KRON", scale=SCALE)
    # Warm the graph-generation cache and the compiled-kernel build so
    # neither pipeline pays one-time costs inside the timed region.
    Runner(machine=DEFAULT_MACHINE).run(workload, BASELINE, use_cache=False)

    ref_seconds, ref_results, new_seconds, new_results = _timed_pipelines(
        workload
    )
    for reference, modern in zip(ref_results, new_results):
        assert modern == reference  # bit-identical counters end to end
    assert all(r.engine == "batch" for r in new_results)  # no fallback

    des = _des_bench()

    record = {
        "backend": {
            "selected": kernel_backends.select_backend("auto"),
            "available": list(kernel_backends.available_backends()),
        },
        "pipeline": {
            "scale": SCALE,
            "modes": [str(m) for m in MODES],
            "reference_seconds": ref_seconds,
            "compiled_seconds": new_seconds,
            "speedup": ref_seconds / new_seconds,
            "max_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        },
        "des_eviction": des,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    bench_history(BENCH_PATH, record)
    print(
        f"\nbackend  {record['backend']['selected']} "
        f"(available: {', '.join(record['backend']['available'])})\n"
        f"pipeline {ref_seconds:.2f}s -> {new_seconds:.2f}s "
        f"({record['pipeline']['speedup']:.2f}x) on the default machine\n"
        f"des loop {des['reference_seconds']:.3f}s -> "
        f"{des['fastloop_seconds']:.3f}s ({des['speedup']:.1f}x)"
    )

    # Acceptance: >= 5x end-to-end on the fig10-sized point (3x is the CI
    # floor, matched here as the hard assert so shared runners don't
    # flake) and fig13a's DES wall-clock at least halved.
    assert record["pipeline"]["speedup"] >= 3.0
    assert des["speedup"] >= 2.0
