"""Ablation: COBRA with a medium LLC C-Buffer count for PINV.

Section VII-A: PINV is the one kernel where more Accumulate bins hurt
(one update per index, so per-bin work is tiny and parallel dispatch
dominates). The paper re-ran COBRA with a *medium* number of LLC C-Buffers
and PINV's improvement rose to 1.94x over software PB. We reproduce the
sweep: COBRA's LLC reservation controls the in-memory bin count, and
PINV's best configuration is a reservation well below the default.
"""

from dataclasses import replace

from repro.harness import modes
from repro.harness.experiments.common import ExperimentResult
from repro.harness.inputs import make_workload
from repro.harness.report import format_table


def _cobra_cycles(runner, workload, llc_reserved):
    cobra = replace(
        runner.cobra_config(workload), llc_reserved_ways=llc_reserved
    )
    des_config = runner._des_config(workload, cobra)
    return sum(
        runner._simulate_phase(workload, phase, des_config).cycles
        for phase in workload.cobra_phases(cobra)
    )


def test_ablation_pinv_bins(benchmark, runner, save_result):
    def run():
        workload = make_workload("pinv", "PERM")
        pb = runner.run(workload, modes.PB_SW).cycles
        base = runner.run(workload, modes.BASELINE).cycles
        rows = []
        for llc_reserved in (1, 3, 7, 15):
            cobra = replace(
                runner.cobra_config(workload), llc_reserved_ways=llc_reserved
            )
            cycles = _cobra_cycles(runner, workload, llc_reserved)
            rows.append(
                {
                    "llc_reserved_ways": llc_reserved,
                    "memory_bins": cobra.llc.num_buffers,
                    "cycles": cycles,
                    "vs_baseline": base / cycles,
                    "vs_pb": pb / cycles,
                }
            )
        text = format_table(
            ["LLC ways", "bins", "Mcyc", "vs baseline", "vs PB-SW"],
            [
                [
                    r["llc_reserved_ways"],
                    r["memory_bins"],
                    r["cycles"] / 1e6,
                    r["vs_baseline"],
                    r["vs_pb"],
                ]
                for r in rows
            ],
            title="Ablation: PINV under COBRA with fewer LLC C-Buffers",
        )
        return ExperimentResult(name="ablation_pinv_bins", rows=rows, text=text)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(result)
    by_ways = {r["llc_reserved_ways"]: r for r in result.rows}
    # Fewer LLC C-Buffers (medium bins) beat the default for PINV —
    # the paper's Section VII-A observation.
    best = max(result.rows, key=lambda r: r["vs_pb"])
    assert best["llc_reserved_ways"] < 15
    assert best["vs_pb"] > by_ways[15]["vs_pb"]
    # And the medium configuration clearly beats software PB (the paper
    # reports 1.94x there; our band is looser).
    assert best["vs_pb"] > 1.4
