"""Figure 2 benchmark: LLC miss rates of baseline irregular updates."""

from repro.harness.experiments import fig02
from repro.harness.inputs import describe_inputs
from repro.harness.report import format_table


def test_fig02_llc_missrate(benchmark, runner, save_result):
    inputs = format_table(
        ["input", "kind", "size", "entries"],
        [
            [
                row["input"],
                row["kind"],
                row.get("vertices", row.get("rows", 0)),
                row.get("edges", row.get("nnz", 0)),
            ]
            for row in describe_inputs()
        ],
        title="Table III (scaled): input suite",
    )
    print("\n" + inputs)
    result = benchmark.pedantic(
        fig02.run, kwargs={"runner": runner}, rounds=1, iterations=1
    )
    save_result(result)
    # The paper's claim: irregular updates suffer high LLC miss rates
    # across all nine application domains.
    assert all(row["llc_miss_rate"] > 0.25 for row in result.rows)
    mean_rate = sum(r["llc_miss_rate"] for r in result.rows) / len(result.rows)
    assert mean_rate > 0.5
