"""Extension benchmark: multicore scalability (not a paper figure).

Quantifies the consequence of the paper's per-thread duplication design:
PB/COBRA scale near-linearly (no inter-thread communication), while the
baseline's shared scatters pay MESI invalidations on skewed inputs.
"""

from repro.harness.experiments import scaling


def test_scaling_extension(benchmark, runner, save_result):
    result = benchmark.pedantic(
        scaling.run, kwargs={"runner": runner}, rounds=1, iterations=1
    )
    save_result(result)
    at_16 = {row["mode"]: row for row in result.rows if row["cores"] == 16}
    # PB scales near-linearly; the baseline is coherence-limited.
    assert at_16["pb-sw"]["speedup"] > 14
    assert at_16["baseline"]["speedup"] < at_16["pb-sw"]["speedup"]
    assert at_16["baseline"]["invalidations_per_update"] > 0.3
    assert at_16["pb-sw"]["invalidations_per_update"] == 0
    assert at_16["cobra"]["invalidations_per_update"] == 0
    # Monotone speedups for every mode.
    for mode in ("baseline", "pb-sw", "cobra"):
        curve = [r["speedup"] for r in result.rows if r["mode"] == mode]
        assert all(a <= b + 1e-9 for a, b in zip(curve, curve[1:]))
