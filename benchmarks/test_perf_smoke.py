"""Perf smoke: wall-clock of the trace engines and the persistent cache.

Times a fixed small sweep (baseline / PB-SW / COBRA on one graph plus
integer sort) three ways — seed-style scalar engine, batched engine, and a
warm persistent cache — plus a raw engine microbench, and records the
numbers in ``benchmarks/results/BENCH_trace_engine.json`` so future PRs
have a perf trajectory to compare against.

The sweep machine disables the prefetcher and uses PLRU at the LLC so the
batched engine engages (the default machine's DRRIP + prefetcher stay on
the scalar path by design — see ``repro.cache.batchsim``).
"""

from __future__ import annotations

import dataclasses
import pathlib
import time

import numpy as np

from repro.cache.batchsim import BatchHierarchy
from repro.cache.fastsim import FastHierarchy
from repro.harness import Runner
from repro.harness.inputs import make_workload
from repro.harness.machine import DEFAULT_MACHINE
from repro.harness.modes import BASELINE, COBRA, PB_SW
from repro.harness.resultcache import ResultCache

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BENCH_PATH = RESULTS_DIR / "BENCH_trace_engine.json"

SCALE = 14
MODES = (BASELINE, PB_SW, COBRA)

SMOKE_MACHINE = dataclasses.replace(
    DEFAULT_MACHINE,
    hierarchy=dataclasses.replace(
        DEFAULT_MACHINE.hierarchy, prefetch=False, llc_policy="plru"
    ),
)


def _points():
    graph = make_workload("degree-count", "KRON", scale=SCALE)
    sort = make_workload("integer-sort", "U16", scale=SCALE)
    return [(w, mode) for w in (graph, sort) for mode in MODES]


def _time_sweep(runner, points):
    start = time.perf_counter()
    results = [runner.run(w, mode) for w, mode in points]
    return time.perf_counter() - start, results


def _engine_microbench(accesses=200_000):
    """Raw accesses/second of each engine on one random trace."""
    rng = np.random.default_rng(2024)
    lines = rng.integers(0, 60_000, size=accesses).astype(np.int64)
    writes = rng.random(accesses) < 0.4

    fast = FastHierarchy(SMOKE_MACHINE.hierarchy)
    start = time.perf_counter()
    fast_counts = fast.run_trace(lines.tolist(), writes.tolist())
    fast_seconds = time.perf_counter() - start

    batch = BatchHierarchy(SMOKE_MACHINE.hierarchy)
    start = time.perf_counter()
    batch_counts = batch.run_trace(lines, writes)
    batch_seconds = time.perf_counter() - start

    assert batch_counts == fast_counts  # the point of the whole exercise
    return {
        "accesses": accesses,
        "fast_seconds": fast_seconds,
        "batch_seconds": batch_seconds,
        "fast_accesses_per_second": accesses / fast_seconds,
        "batch_accesses_per_second": accesses / batch_seconds,
    }


def test_perf_smoke(tmp_path, bench_history):
    points = _points()

    # 1. Seed path: scalar engine, no persistent cache.
    scalar_seconds, scalar_results = _time_sweep(
        Runner(machine=SMOKE_MACHINE, engine="fast"), points
    )

    # 2. Batched engine, cold — also primes the persistent cache.
    cache_dir = tmp_path / "cache"
    batch_seconds, batch_results = _time_sweep(
        Runner(
            machine=SMOKE_MACHINE,
            engine="auto",
            result_cache=ResultCache(cache_dir),
        ),
        points,
    )
    for scalar, batched in zip(scalar_results, batch_results):
        assert batched == scalar  # engine equivalence, end to end

    # 3. Warm persistent cache: a fresh runner reads everything from disk.
    warm_seconds, warm_results = _time_sweep(
        Runner(
            machine=SMOKE_MACHINE,
            engine="auto",
            result_cache=ResultCache(cache_dir),
        ),
        points,
    )
    for scalar, warm in zip(scalar_results, warm_results):
        assert warm == scalar  # bit-identical counters from disk

    micro = _engine_microbench()
    record = {
        "scale": SCALE,
        "points": [f"{w.cache_key}/{mode}" for w, mode in points],
        "scalar_cold_seconds": scalar_seconds,
        "batch_cold_seconds": batch_seconds,
        "warm_cache_seconds": warm_seconds,
        "batch_speedup": scalar_seconds / batch_seconds,
        "warm_speedup": scalar_seconds / warm_seconds,
        "engine_microbench": micro,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    bench_history(BENCH_PATH, record)
    print(
        f"\nscalar cold {scalar_seconds:.2f}s | "
        f"batch cold {batch_seconds:.2f}s "
        f"({record['batch_speedup']:.2f}x) | "
        f"warm cache {warm_seconds:.3f}s "
        f"({record['warm_speedup']:.1f}x)\n"
        f"engine: {micro['fast_accesses_per_second']:,.0f} -> "
        f"{micro['batch_accesses_per_second']:,.0f} accesses/s"
    )

    # The acceptance bar: batched engine + warm cache >= 3x the seed path.
    assert record["warm_speedup"] >= 3.0
    # And the batched engine alone must never lose to the scalar engine.
    assert batch_seconds < scalar_seconds
