"""Figure 14 benchmark: COBRA vs commutativity-specialized systems."""

from repro.harness.experiments import fig14


def _system_rows(result, workload, system):
    return [
        r
        for r in result.rows
        if r["workload"] == workload and r["system"] == system
    ]


def test_fig14_comm(benchmark, runner, save_result):
    result = benchmark.pedantic(
        fig14.run, kwargs={"runner": runner}, rounds=1, iterations=1
    )
    save_result(result)

    # (1) PHI and COBRA-COMM are inapplicable to the non-commutative
    # Neighbor-Populate; COBRA is the only viable hardware optimization.
    for system in ("phi", "cobra-comm"):
        rows = _system_rows(result, "neighbor-populate", system)
        assert rows and all(not r["applicable"] for r in rows)
    assert all(
        r["applicable"] for r in _system_rows(result, "neighbor-populate", "cobra")
    )

    # (2) On the skewed KRON input, coalescing buys extra DRAM-traffic
    # reduction over COBRA; on uniform URND it does not (low temporal
    # reuse — the paper's second observation).
    def reduction(system, input_name):
        (row,) = [
            r
            for r in _system_rows(result, "degree-count", system)
            if r["input"] == input_name
        ]
        return row["traffic_reduction"]

    assert reduction("cobra-comm", "KRON") > 1.1 * reduction("cobra", "KRON")
    assert reduction("cobra-comm", "URND") < 1.1 * reduction("cobra", "URND")
    # COBRA-COMM matches PHI's traffic reduction despite coalescing only
    # at the LLC (paper: PHI coalesces 97% of updates there anyway).
    assert reduction("cobra-comm", "KRON") > 0.85 * reduction("phi", "KRON")

    # (3) COBRA's optimal Accumulate bins minimize L1 misses; PHI (stuck
    # at the software compromise bins) reduces them less on low-reuse
    # inputs.
    def l1_reduction(system, input_name):
        (row,) = [
            r
            for r in _system_rows(result, "degree-count", system)
            if r["input"] == input_name
        ]
        return row["l1_miss_reduction"]

    for input_name in ("URND", "EURO"):
        assert l1_reduction("cobra", input_name) >= 0.9 * l1_reduction(
            "phi", input_name
        )
