"""Figure 13c benchmark: context-switch DRAM bandwidth waste."""

from repro.harness.experiments import fig13


def test_fig13c_context_switch(benchmark, save_result):
    result = benchmark.pedantic(
        fig13.run_context_switch, rounds=1, iterations=1
    )
    save_result(result)
    rows = sorted(result.rows, key=lambda r: r["quantum_tuples"])
    wastes = [row["waste_fraction"] for row in rows]
    # Waste shrinks monotonically as the quantum grows…
    assert all(a >= b - 1e-9 for a, b in zip(wastes, wastes[1:]))
    # …and even at 1/100th-of-Linux-quantum preemption rates the waste is
    # small (paper: <5%). Our quantum axis is in tuples; the second-largest
    # point corresponds to that regime.
    assert wastes[-2] < 0.05
    assert wastes[-1] < 0.02
