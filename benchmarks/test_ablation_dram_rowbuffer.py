"""Ablation: DRAM row-buffer behaviour of baseline vs PB phases.

Beyond caches, binning reorders DRAM traffic itself: the baseline's
scattered updates close a row per access, while PB/COBRA touch DRAM with
sequential bin writes (Binning) and range-confined replays (Accumulate).
The banked DRAM model quantifies the row-hit-rate gap — an additional,
paper-adjacent benefit of the same reordering.
"""

from repro.dram import DramModel
from repro.harness.experiments.common import ExperimentResult
from repro.harness.inputs import make_workload
from repro.harness.report import format_table
from repro.pb.bins import BinSpec, bin_updates


def test_ablation_dram_rowbuffer(benchmark, runner, save_result):
    def run():
        rows = []
        for input_name in ("KRON", "URND"):
            workload = make_workload("degree-count", input_name)
            line_elems = 64 // workload.element_bytes
            sample = workload.update_indices[:200_000]

            baseline_lines = (sample // line_elems).tolist()
            baseline = DramModel().run(baseline_lines)

            spec = BinSpec.from_num_bins(workload.num_indices, 1024)
            binned, _vals, _off = bin_updates(sample, None, spec)
            accumulate_lines = (binned // line_elems).tolist()
            accumulate = DramModel().run(accumulate_lines)

            # Binning's own DRAM writes are the bins, filled sequentially.
            tuples_per_line = 64 // workload.tuple_bytes
            bin_write_lines = list(range(len(sample) // tuples_per_line))
            binning = DramModel().run(bin_write_lines)

            rows.append(
                {
                    "input": input_name,
                    "baseline_hit_rate": baseline.row_hit_rate,
                    "binning_hit_rate": binning.row_hit_rate,
                    "accumulate_hit_rate": accumulate.row_hit_rate,
                    "baseline_avg_latency": baseline.average_latency,
                    "accumulate_avg_latency": accumulate.average_latency,
                }
            )
        text = format_table(
            [
                "input",
                "baseline hit",
                "binning hit",
                "accumulate hit",
                "baseline lat",
                "accumulate lat",
            ],
            [
                [
                    r["input"],
                    r["baseline_hit_rate"],
                    r["binning_hit_rate"],
                    r["accumulate_hit_rate"],
                    r["baseline_avg_latency"],
                    r["accumulate_avg_latency"],
                ]
                for r in rows
            ],
            title="Ablation: DRAM row-buffer hit rates per phase",
        )
        return ExperimentResult(
            name="ablation_dram_rowbuffer", rows=rows, text=text
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(result)
    for row in result.rows:
        assert row["binning_hit_rate"] > 0.95  # pure sequential writes
        assert row["accumulate_hit_rate"] > row["baseline_hit_rate"] + 0.3
        assert row["accumulate_avg_latency"] < row["baseline_avg_latency"]
