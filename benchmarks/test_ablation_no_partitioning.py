"""Ablation: COBRA without static cache partitioning (Section V-E).

The paper claims the baseline replacement policies (PLRU at L1/L2, DRRIP
at the LLC) retain C-Buffer lines well even *without* way reservation,
because all competing accesses during Binning are streaming: they measured
a <1% C-Buffer miss rate on their cache simulator. We repeat the
experiment: C-Buffer lines become ordinary cacheable data fighting the
edge stream, and we measure how often a C-Buffer access leaves the
hierarchy.
"""

from repro.harness.experiments.common import ExperimentResult
from repro.harness.inputs import make_workload
from repro.harness.report import format_table
from repro.workloads.base import PhaseSpec, RegionSpec, Segment


def _unpartitioned_cbuffer_phase(workload, num_buffers):
    bin_shift = max(
        0, (workload.num_indices // num_buffers).bit_length() - 1
    )
    bin_ids = workload.update_indices >> bin_shift
    region = RegionSpec(f"{workload.name}.soft-cbuffers", 64, num_buffers)
    return PhaseSpec(
        name="binning",
        instructions=workload.num_updates * 3,
        branches=workload.num_updates,
        segments=[Segment(region, bin_ids, True)],
        streaming_bytes=workload.num_updates * workload.stream_bytes_per_update,
        reserved_ways=None,  # the whole point: no partitioning
    )


def test_ablation_no_partitioning(benchmark, runner, save_result):
    def run():
        rows = []
        for input_name in ("KRON", "URND", "EURO"):
            workload = make_workload("neighbor-populate", input_name)
            cobra = runner.cobra_config(workload)
            phase = _unpartitioned_cbuffer_phase(
                workload, cobra.llc.num_buffers
            )
            counters = runner._simulate_phase(workload, phase, None)
            service = counters.irregular_service
            rows.append(
                {
                    "input": input_name,
                    "dram_miss_rate": service.dram / max(service.total, 1),
                    "llc_or_better": (service.total - service.dram)
                    / max(service.total, 1),
                }
            )
        text = format_table(
            ["input", "C-Buffer DRAM-miss rate", "retained on chip"],
            [
                [r["input"], r["dram_miss_rate"], r["llc_or_better"]]
                for r in rows
            ],
            title="Ablation: C-Buffer retention without static partitioning",
            floatfmt="{:.4f}",
        )
        return ExperimentResult(
            name="ablation_no_partitioning", rows=rows, text=text
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(result)
    # Section V-E's claim: streaming competitors barely displace C-Buffer
    # lines — miss rate stays around or below 1%.
    for row in result.rows:
        assert row["dram_miss_rate"] < 0.02, row
