"""Figure 13b benchmark: sensitivity to ways reserved for C-Buffers."""

from repro.harness.experiments import fig13


def test_fig13b_way_sensitivity(benchmark, save_result):
    result = benchmark.pedantic(
        fig13.run_way_sensitivity, rounds=1, iterations=1
    )
    save_result(result)
    worst = {
        level: max(
            row["normalized"] for row in result.rows if row["level"] == level
        )
        for level in ("l1", "l2", "llc")
    }
    # Paper: Binning is robust (<=10% variation) to L1/LLC reservations…
    assert worst["l1"] < 1.12
    assert worst["llc"] < 1.12
    # …but sensitive at the L2, where the stream prefetcher needs space.
    assert worst["l2"] > worst["l1"]
    assert worst["l2"] > worst["llc"]
    assert worst["l2"] > 1.1
