"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at full
scale (DESIGN.md Section 3), prints the rows/series the paper reports, and
persists them under ``benchmarks/results/``. A session-wide runner memoizes
(workload, mode) runs so later figures reuse earlier simulations.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.harness.experiments.common import shared_runner
from repro.harness.resultcache import ResultCache

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def runner():
    """Session-wide runner shared by all figure benchmarks.

    Carries the persistent result cache (``benchmarks/results/.cache/``) so
    a re-run — or a resumed, previously killed session — skips completed
    simulations entirely.
    """
    instance = shared_runner()
    if instance.result_cache is None:
        instance.result_cache = ResultCache()
    return instance


@pytest.fixture(scope="session")
def bench_history():
    """Append a perf measurement to a ``BENCH_*.json`` history envelope.

    The perf suites used to ``write_text`` their record, silently clobbering
    every earlier suite's measurement — which is how the PR-1 and PR-4 BENCH
    files vanished. Records now accumulate keyed by git SHA + ISO date (see
    :mod:`repro.harness.benchhistory`), and ``repro trend`` renders the
    resulting trajectory.
    """
    from repro.harness.benchhistory import append_bench_record

    def append(path, record):
        history = append_bench_record(path, record)
        entry = history["entries"][-1]
        print(
            f"[appended entry {len(history['entries'])} "
            f"(git {str(entry['git_sha'])[:12]}, {entry['recorded']}) "
            f"to {path}]"
        )
        return history

    return append


@pytest.fixture(scope="session")
def save_result():
    """Persist an ExperimentResult (text + CSV rows) and echo the text."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def save(result):
        path = RESULTS_DIR / f"{result.name}.txt"
        path.write_text(result.text + "\n")
        if result.rows:
            import csv

            csv_path = RESULTS_DIR / f"{result.name}.csv"
            fieldnames = list(result.rows[0])
            with csv_path.open("w", newline="") as handle:
                writer = csv.DictWriter(handle, fieldnames=fieldnames)
                writer.writeheader()
                writer.writerows(result.rows)
        print(f"\n{result.text}\n[saved to {path}]")
        return result

    return save
