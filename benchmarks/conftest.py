"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at full
scale (DESIGN.md Section 3), prints the rows/series the paper reports, and
persists them under ``benchmarks/results/``. A session-wide runner memoizes
(workload, mode) runs so later figures reuse earlier simulations.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.harness.experiments.common import shared_runner
from repro.harness.resultcache import ResultCache

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def runner():
    """Session-wide runner shared by all figure benchmarks.

    Carries the persistent result cache (``benchmarks/results/.cache/``) so
    a re-run — or a resumed, previously killed session — skips completed
    simulations entirely.
    """
    instance = shared_runner()
    if instance.result_cache is None:
        instance.result_cache = ResultCache()
    return instance


@pytest.fixture(scope="session")
def save_result():
    """Persist an ExperimentResult (text + CSV rows) and echo the text."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def save(result):
        path = RESULTS_DIR / f"{result.name}.txt"
        path.write_text(result.text + "\n")
        if result.rows:
            import csv

            csv_path = RESULTS_DIR / f"{result.name}.csv"
            fieldnames = list(result.rows[0])
            with csv_path.open("w", newline="") as handle:
                writer = csv.DictWriter(handle, fieldnames=fieldnames)
                writer.writeheader()
                writer.writerows(result.rows)
        print(f"\n{result.text}\n[saved to {path}]")
        return result

    return save
