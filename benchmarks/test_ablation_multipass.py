"""Ablation: COBRA vs the software escape hatch (multi-pass partitioning).

The radix-partitioning literature the paper cites avoids the many-bins
cliff in software by partitioning in two passes of sqrt(B) bins each —
every pass stays cache-resident, but every tuple is moved twice. COBRA's
hierarchical C-Buffers achieve the resident working set in one pass. This
bench compares Binning to the accumulate-optimal bin count three ways:
single-pass software PB, two-pass software partitioning, and COBRA.
"""

from repro.harness import modes
from repro.harness.experiments.common import ExperimentResult
from repro.harness.inputs import make_workload
from repro.harness.report import format_table
from repro.pb import BinSpec, MultiPassPartitioner


def _two_pass_cycles(runner, workload, total_bins):
    """Two sqrt(B)-bin passes; the second streams tuples back from bins."""
    partitioner = MultiPassPartitioner(
        workload.num_indices, total_bins, passes=2
    )
    coarse_bins = partitioner.max_live_buffers()
    coarse = BinSpec.from_num_bins(workload.num_indices, coarse_bins)
    first = workload.pb_phases(coarse, include_init=False)[0]
    second = workload.pb_phases(coarse, include_init=False)[0]
    # Pass 2 re-reads the binned tuples instead of the original stream.
    second.streaming_bytes = workload.num_updates * workload.tuple_bytes
    return sum(
        runner._simulate_phase(workload, phase, None).cycles
        for phase in (first, second)
    )


def test_ablation_multipass(benchmark, runner, save_result):
    def run():
        rows = []
        for input_name in ("KRON", "URND"):
            workload = make_workload("neighbor-populate", input_name)
            cobra_cfg = runner.cobra_config(workload)
            total_bins = cobra_cfg.llc.num_buffers
            total_bins = 1 << (total_bins.bit_length() - 1)
            single_spec = BinSpec.from_num_bins(
                workload.num_indices, total_bins
            )
            single = runner._simulate_phase(
                workload,
                workload.pb_phases(single_spec, include_init=False)[0],
                None,
            ).cycles
            double = _two_pass_cycles(runner, workload, total_bins)
            cobra = runner.run(workload, modes.COBRA).phase("binning").cycles
            rows.append(
                {
                    "input": input_name,
                    "bins": total_bins,
                    "single_pass": single,
                    "two_pass": double,
                    "cobra": cobra,
                }
            )
        text = format_table(
            ["input", "bins", "1-pass Mcyc", "2-pass Mcyc", "COBRA Mcyc"],
            [
                [
                    r["input"],
                    r["bins"],
                    r["single_pass"] / 1e6,
                    r["two_pass"] / 1e6,
                    r["cobra"] / 1e6,
                ]
                for r in rows
            ],
            title="Ablation: Binning to the accumulate-optimal bin count",
        )
        return ExperimentResult(name="ablation_multipass", rows=rows, text=text)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(result)
    for row in result.rows:
        # COBRA beats both software strategies outright…
        assert row["cobra"] < row["two_pass"]
        assert row["cobra"] < row["single_pass"]
        # …and two-pass partitioning, despite moving every tuple twice,
        # is itself competitive with (or better than) the spilling
        # single pass — the cliff the literature documents.
        assert row["two_pass"] < 2.5 * row["single_pass"]
