"""Figure 15 benchmark: Propagation Blocking vs CSR-Segmenting tiling."""

from repro.harness.experiments import fig15
from repro.harness.report import geomean


def test_fig15_tiling(benchmark, runner, save_result):
    result = benchmark.pedantic(
        fig15.run, kwargs={"runner": runner}, rounds=1, iterations=1
    )
    save_result(result)
    pb_no_init = geomean([r["pb_speedup_no_init"] for r in result.rows])
    tiling_no_init = geomean([r["tiling_speedup_no_init"] for r in result.rows])
    # Paper: PB 1.35x vs Tiling 1.27x mean, ignoring overheads.
    assert pb_no_init > tiling_no_init
    assert 1.2 < pb_no_init < 2.2
    assert 1.0 < tiling_no_init < 2.0
    for row in result.rows:
        # Tiling pays far more preprocessing than PB's bin allocation…
        assert row["tiling_init_fraction"] > 5 * row["pb_init_fraction"]
        # …so with overheads counted PB wins (the reason COBRA builds on
        # PB rather than tiling).
        assert row["pb_speedup"] > row["tiling_speedup"]
