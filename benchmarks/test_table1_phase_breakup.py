"""Table I benchmark: where a PB execution spends its cycles."""

from repro.harness.experiments import table1


def test_table1_phase_breakup(benchmark, runner, save_result):
    result = benchmark.pedantic(
        table1.run, kwargs={"runner": runner}, rounds=1, iterations=1
    )
    save_result(result)
    small, large = result.rows
    # Binning dominates at large bin counts — COBRA's target.
    assert large["binning_pct"] > 50
    assert large["binning_pct"] > small["binning_pct"]
    # Init is the smallest phase in both configurations (the paper counts
    # it against PB and COBRA alike).
    for row in (small, large):
        assert row["init_pct"] < row["binning_pct"]
        assert row["init_pct"] < row["accumulate_pct"]
