"""Figure 4 benchmark: PB's bin-count tension (Binning vs Accumulate)."""

from repro.harness.experiments import fig04


def test_fig04_bin_sensitivity(benchmark, runner, save_result):
    result = benchmark.pedantic(
        fig04.run, kwargs={"runner": runner}, rounds=1, iterations=1
    )
    save_result(result)
    rows = result.rows
    # Binning degrades as bins grow (C-Buffers spill down the hierarchy)…
    assert rows[-1]["binning_cycles"] > 1.5 * rows[0]["binning_cycles"]
    # …while Accumulate improves (bin ranges shrink toward the L1)…
    assert rows[0]["accumulate_cycles"] > 2 * rows[-1]["accumulate_cycles"]
    # …so the best total sits strictly between the extremes (the
    # compromise of Section III-C).
    totals = [row["total_cycles"] for row in rows]
    best = totals.index(min(totals))
    assert 0 < best < len(rows) - 1
