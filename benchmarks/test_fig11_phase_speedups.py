"""Figure 11 benchmark: COBRA's per-phase speedups over software PB."""

from repro.harness.experiments import fig11


def test_fig11_phase_speedups(benchmark, runner, save_result):
    result = benchmark.pedantic(
        fig11.run, kwargs={"runner": runner}, rounds=1, iterations=1
    )
    save_result(result)
    extras = result.extras
    # Binning is where the architecture support bites (paper: 2.2-32x).
    assert extras["binning"] > 2.0
    assert all(row["binning_speedup"] > 1.2 for row in result.rows)
    # Accumulate gains come only from the better bin count: smaller.
    assert 1.0 < extras["accumulate"] < 2.0
    assert extras["binning"] > extras["accumulate"]
