"""Perf benchmark: vectorized phase pipeline vs the scalar reference path.

Two measurements, recorded in ``benchmarks/results/BENCH_phase_pipeline.json``:

1. **Branch-predictor kernel** — mispredictions of a 1M-outcome stream
   through GShare and Bimodal, scalar loop vs ``simulate_array``. The
   vectorized kernel must be >= 5x faster (CI enforces a 3x floor so a
   noisy shared runner doesn't flake the gate).
2. **End-to-end phase pipeline** — a fig10-sized point (the figure's four
   modes on one graph) through the full modern pipeline (batched engine +
   vector predictor + chunked traces) vs the reference configuration
   (scalar engine + scalar predictor + full trace materialization). The
   modern pipeline must be >= 2x faster while producing bit-identical
   counters.

Memory is profiled in a separate untimed pass: ``tracemalloc`` adds heavy
per-allocation overhead that would skew the numpy-dense modern path, so
the timed runs never execute under tracing. The probe replays one
baseline-mode point with full trace materialization and one with the
default chunking — everything else held equal — and records the peak
traced bytes, which shows chunked trace assembly holding O(chunk) rather
than O(trace).
"""

from __future__ import annotations

import dataclasses
import pathlib
import resource
import time
import tracemalloc

import numpy as np

from repro.cpu.branch import BimodalPredictor, GSharePredictor
from repro.harness import Runner
from repro.harness.inputs import make_workload
from repro.harness.machine import DEFAULT_MACHINE
from repro.harness.modes import BASELINE, COBRA, PB_SW, PB_SW_IDEAL

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BENCH_PATH = RESULTS_DIR / "BENCH_phase_pipeline.json"

OUTCOMES = 1_000_000
SCALE = 16
MODES = (BASELINE, PB_SW, PB_SW_IDEAL, COBRA)  # the fig10 mode set

# The batched engine needs a batchable hierarchy (no prefetch, PLRU LLC);
# the same machine runs both pipelines so only the pipeline differs.
PIPELINE_MACHINE = dataclasses.replace(
    DEFAULT_MACHINE,
    hierarchy=dataclasses.replace(
        DEFAULT_MACHINE.hierarchy, prefetch=False, llc_policy="plru"
    ),
)

# Reference = the pre-vectorization pipeline; modern = everything this
# repo now turns on by default.
REF_CONFIG = dict(env="scalar", kwargs=dict(engine="fast", trace_chunk=0))
NEW_CONFIG = dict(env="vector", kwargs=dict(engine="auto"))


def _best_of(repeats, fn):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _predictor_bench(make_predictor, outcomes):
    scalar_pred = make_predictor()
    outcome_list = outcomes.tolist()
    scalar_seconds, scalar_count = _best_of(
        3, lambda: scalar_pred.simulate(0x400, outcome_list)
    )
    vector_pred = make_predictor()
    vector_seconds, vector_count = _best_of(
        3, lambda: vector_pred.simulate_array(0x400, outcomes)
    )
    assert vector_count == scalar_count  # bit-identical, not just close
    return {
        "outcomes": len(outcomes),
        "scalar_seconds": scalar_seconds,
        "vector_seconds": vector_seconds,
        "speedup": scalar_seconds / vector_seconds,
        "mispredicts": int(scalar_count),
    }


def _run_pipeline(workload, monkeypatch, config):
    """Time one fig10-sized point; returns (seconds, results)."""
    monkeypatch.setenv("REPRO_BRANCH_BACKEND", config["env"])
    runner = Runner(machine=PIPELINE_MACHINE, **config["kwargs"])
    start = time.perf_counter()
    results = [runner.run(workload, mode, use_cache=False) for mode in MODES]
    return time.perf_counter() - start, results


def _timed_pipelines(workload, monkeypatch, repeats=2):
    """Interleaved best-of-N timing of both pipelines.

    Alternating ref/new runs keeps host noise (frequency scaling, noisy
    neighbours) from landing entirely on one side of the ratio.
    """
    ref_seconds = new_seconds = float("inf")
    ref_results = new_results = None
    for _ in range(repeats):
        seconds, ref_results = _run_pipeline(workload, monkeypatch, REF_CONFIG)
        ref_seconds = min(ref_seconds, seconds)
        seconds, new_results = _run_pipeline(workload, monkeypatch, NEW_CONFIG)
        new_seconds = min(new_seconds, seconds)
    return ref_seconds, ref_results, new_seconds, new_results


def _memory_probe(workload, monkeypatch, trace_chunk):
    """Peak traced bytes of one untimed baseline-mode point.

    Both probes run the scalar predictor on the fast engine so the only
    difference is trace assembly: ``trace_chunk=0`` materializes the whole
    merged trace, the default streams O(chunk) slices.
    """
    monkeypatch.setenv("REPRO_BRANCH_BACKEND", "scalar")
    runner = Runner(
        machine=PIPELINE_MACHINE, engine="fast", trace_chunk=trace_chunk
    )
    tracemalloc.start()
    runner.run(workload, BASELINE, use_cache=False)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


def test_perf_phase_pipeline(monkeypatch, bench_history):
    rng = np.random.default_rng(2026)
    outcomes = rng.random(OUTCOMES) < 0.37

    gshare = _predictor_bench(GSharePredictor, outcomes)
    bimodal = _predictor_bench(BimodalPredictor, outcomes)

    workload = make_workload("degree-count", "KRON", scale=SCALE)
    # Warm the workload/graph generation cache so neither pipeline pays it.
    Runner(machine=PIPELINE_MACHINE).run(workload, BASELINE, use_cache=False)

    ref_seconds, ref_results, new_seconds, new_results = _timed_pipelines(
        workload, monkeypatch
    )

    for reference, modern in zip(ref_results, new_results):
        assert modern == reference  # bit-identical end to end

    materialized_peak = _memory_probe(workload, monkeypatch, trace_chunk=0)
    chunked_peak = _memory_probe(workload, monkeypatch, trace_chunk=None)

    record = {
        "branch_gshare": gshare,
        "branch_bimodal": bimodal,
        "pipeline": {
            "scale": SCALE,
            "modes": [str(m) for m in MODES],
            "reference_seconds": ref_seconds,
            "vectorized_seconds": new_seconds,
            "speedup": ref_seconds / new_seconds,
            "trace_materialized_peak_bytes": materialized_peak,
            "trace_chunked_peak_bytes": chunked_peak,
            "max_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    bench_history(BENCH_PATH, record)
    print(
        f"\ngshare  {gshare['scalar_seconds']:.3f}s -> "
        f"{gshare['vector_seconds']:.3f}s ({gshare['speedup']:.1f}x)\n"
        f"bimodal {bimodal['scalar_seconds']:.3f}s -> "
        f"{bimodal['vector_seconds']:.3f}s ({bimodal['speedup']:.1f}x)\n"
        f"pipeline {ref_seconds:.2f}s -> {new_seconds:.2f}s "
        f"({record['pipeline']['speedup']:.2f}x), trace assembly peak "
        f"{materialized_peak / 1e6:.1f} -> {chunked_peak / 1e6:.1f} MB"
    )

    # Acceptance: >=5x on the 1M-outcome branch stream (3x is the CI
    # floor, matched here as the hard assert so shared runners don't flake)
    assert gshare["speedup"] >= 3.0
    assert bimodal["speedup"] >= 3.0
    # and >=2x end-to-end on the fig10-sized point.
    assert record["pipeline"]["speedup"] >= 2.0
