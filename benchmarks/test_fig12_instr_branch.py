"""Figure 12 benchmark: instruction and branch-misprediction overheads."""

from repro.harness.experiments import fig12


def test_fig12_instr_branch(benchmark, runner, save_result):
    result = benchmark.pedantic(
        fig12.run, kwargs={"runner": runner}, rounds=1, iterations=1
    )
    save_result(result)
    # Paper (top): COBRA executes 2-5.5x fewer instructions than PB.
    for row in result.rows:
        assert 1.7 < row["instr_reduction"] < 5.5
    # Paper (Section III-C): PB executes up to ~4x the baseline's
    # instructions (Integer Sort is excluded: its baseline is n log n;
    # PINV's near-bare store loop makes the relative overhead largest).
    for row in result.rows:
        if row["workload"] != "integer-sort":
            assert 1.5 < row["pb_over_baseline_instr"] < 5.0
    # Paper (bottom): COBRA eliminates the C-Buffer-full branches. For
    # kernels with no other unpredictable branches, the COBRA MPKI drops
    # to ~the baseline level; PR/Radii/SymPerm keep their boundary checks
    # (footnote 3).
    for row in result.rows:
        assert row["mpki_pb"] > 0
        if row["workload"] in ("degree-count", "neighbor-populate", "spmv",
                               "pinv", "transpose"):
            assert row["mpki_cobra"] < 0.05
        if row["workload"] in ("pagerank", "radii", "symperm"):
            assert row["mpki_cobra"] > 0  # boundary/upper checks remain
