"""Figure 5 benchmark: headroom of PB-SW-IDEAL over software PB."""

from repro.harness.experiments import fig05
from repro.harness.report import geomean


def test_fig05_ideal_headroom(benchmark, runner, save_result):
    result = benchmark.pedantic(
        fig05.run, kwargs={"runner": runner}, rounds=1, iterations=1
    )
    save_result(result)
    # Paper: the ideal variant gains a mean 1.2x over PB-SW. Our model
    # shows the same headroom direction, somewhat smaller in magnitude.
    assert 1.03 < result.extras["headroom"] < 1.35
    # PINV is the documented outlier where ideal *underperforms* PB-SW
    # (Section VII-A: parallelism artifacts beat locality).
    pinv = [r for r in result.rows if r["workload"] == "pinv"]
    assert all(row["headroom"] < 1.0 for row in pinv)
    # Everyone else benefits.
    others = [r["headroom"] for r in result.rows if r["workload"] != "pinv"]
    assert geomean(others) > 1.05
