#!/usr/bin/env python3
"""CI smoke test for the crash-safe sweep service (``repro serve``).

Two scenarios, both through real daemon subprocesses:

**A — crash recovery.** Boot a daemon, submit one fig10-sized job
(degree-count/KRON at scale 13 under all four execution modes) with a
fault injector stalling its first point so the job cannot finish, wait
until the job is running, ``kill -9`` the daemon, restart it on the same
state directory, and assert the job completes automatically — no
resubmission — with counters bit-identical to direct in-process runs.
A SIGTERM drain of the recovered daemon must then exit 0.

**B — chaos drill.** :func:`repro.service.chaos.run_chaos_drill` at a
smaller scale: concurrent submissions against a queue_max=1 daemon
(asserting 429 shedding), injected worker kill + stall + journal
torn-write, a daemon SIGKILL plus an externally torn journal tail,
restart, bit-identical completion of every job, graceful drain.

Telemetry JSONL logs from both scenarios land in the artifacts
directory (first argv, default a temp dir) for CI upload, alongside the
chaos report JSON.

Exit codes: 0 success; 2 boot/submission failure; 3 crash-recovery
failure (job lost or stuck after restart); 4 counters not bit-identical;
5 chaos drill failure; 1 infrastructure problems in the smoke itself.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.service.chaos import (  # noqa: E402
    run_chaos_drill,
    spawn_daemon,
    wait_endpoint,
)
from repro.service.client import ServiceClient, ServiceError  # noqa: E402

SCALE = 13
MODES = ("baseline", "pb-sw", "pb-sw-ideal", "cobra")
POLL_SECONDS = 0.1

EXIT_BOOT = 2
EXIT_RECOVERY = 3
EXIT_NOT_IDENTICAL = 4
EXIT_CHAOS = 5


def fail(message, code=1):
    print(f"service-smoke FAILED: {message}", file=sys.stderr)
    sys.exit(code)


def expected_counters():
    from repro.harness.inputs import make_workload
    from repro.harness.resultcache import counters_to_dict
    from repro.harness.runner import Runner

    runner = Runner(result_cache=None)
    workload = make_workload("degree-count", "KRON", SCALE)
    return [
        counters_to_dict(runner.run(workload, mode, use_cache=False))
        for mode in MODES
    ]


def scenario_recovery(work, artifacts):
    state_dir = work / "service"
    checkpoint_root = work / "runs"
    cache_dir = work / "cache"
    telemetry = artifacts / "service_smoke.jsonl"
    inject = (
        f"stall=degree-count:KRON:{SCALE}|baseline;stall_seconds=600;"
        f"state={work / 'fault-state'}"
    )
    points = [
        {"point": f"degree-count:KRON:{SCALE}", "mode": mode}
        for mode in MODES
    ]

    print(f"service-smoke: direct reference runs (scale {SCALE}, 4 modes)")
    expected = expected_counters()

    print("service-smoke: booting daemon, submitting the fig10-sized job")
    daemon = spawn_daemon(
        state_dir,
        checkpoint_root,
        cache_dir,
        port=0,
        extra_env={"REPRO_FAULT_INJECT": inject},
        extra_args=["--jobs", "2", "--timeout", "120"],
        telemetry=telemetry,
    )
    try:
        endpoint = wait_endpoint(state_dir, daemon)
    except RuntimeError as exc:
        daemon.kill()
        fail(str(exc), code=EXIT_BOOT)
    port = endpoint["port"]
    client = ServiceClient(port=port, retries=20, client_name="smoke")
    try:
        payload = client.submit(points, label="smoke-fig10")
    except ServiceError as exc:
        daemon.kill()
        fail(f"submission refused: {exc}", code=EXIT_BOOT)
    job_id = payload["job"]["job_id"]
    print(f"service-smoke: job {job_id} accepted")

    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline:
        state = client.job(job_id)
        if state is not None and state["job"]["state"] == "running":
            break
        if daemon.poll() is not None:
            fail(
                f"daemon died before the job ran:\n{daemon.communicate()[1]}",
                code=EXIT_BOOT,
            )
        time.sleep(POLL_SECONDS)
    else:
        daemon.kill()
        fail("job never reached running before the kill", code=EXIT_BOOT)

    endpoint_mtime = (state_dir / "endpoint.json").stat().st_mtime
    daemon.send_signal(signal.SIGKILL)
    daemon.wait(timeout=30)
    print("service-smoke: daemon SIGKILLed mid-job; restarting")

    daemon = spawn_daemon(
        state_dir,
        checkpoint_root,
        cache_dir,
        port=port,
        extra_env={"REPRO_FAULT_INJECT": inject},
        extra_args=["--jobs", "2", "--timeout", "120"],
        telemetry=telemetry,
    )
    try:
        try:
            wait_endpoint(state_dir, daemon, after=endpoint_mtime)
        except RuntimeError as exc:
            fail(str(exc), code=EXIT_RECOVERY)
        try:
            final = client.wait_job(job_id, timeout=300.0)
        except ServiceError as exc:
            fail(f"job did not finish after restart: {exc}", code=EXIT_RECOVERY)
        if final["job"]["state"] != "completed":
            fail(
                f"job ended {final['job']['state']} after restart "
                f"({final['job'].get('error')})",
                code=EXIT_RECOVERY,
            )
        if final.get("results") != expected:
            fail(
                "recovered job counters are not bit-identical to the "
                "direct runs",
                code=EXIT_NOT_IDENTICAL,
            )
        print("service-smoke: recovery OK, counters bit-identical")
        daemon.send_signal(signal.SIGTERM)
        try:
            code = daemon.wait(timeout=120)
        except subprocess.TimeoutExpired:
            fail("drain did not finish", code=EXIT_RECOVERY)
        if code != 0:
            fail(f"SIGTERM drain exited {code}, wanted 0", code=EXIT_RECOVERY)
        print("service-smoke: drain OK (exit 0)")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait(timeout=30)


def scenario_chaos(work, artifacts):
    print("service-smoke: running the chaos drill (scale 10)")
    report = run_chaos_drill(
        work / "chaos",
        scale=10,
        print_fn=print,
        telemetry=artifacts / "chaos.jsonl",
    )
    report_path = artifacts / "chaos_report.json"
    report_path.write_text(
        json.dumps(report.as_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"service-smoke: chaos report at {report_path}")
    if not report.ok:
        for error in report.errors:
            print(f"  chaos: {error}", file=sys.stderr)
        fail("chaos drill failed", code=EXIT_CHAOS)
    print(
        f"service-smoke: chaos OK ({report.completed} jobs, "
        f"{report.shed_responses} shed, drain exit {report.drain_exit_code})"
    )


def main():
    work = Path(tempfile.mkdtemp(prefix="service-smoke-"))
    artifacts = (
        Path(sys.argv[1]) if len(sys.argv) > 1 else work / "artifacts"
    )
    artifacts.mkdir(parents=True, exist_ok=True)
    os.environ.pop("REPRO_FAULT_INJECT", None)
    scenario_recovery(work / "recovery", artifacts)
    scenario_chaos(work, artifacts)
    print("service-smoke PASSED")


if __name__ == "__main__":
    main()
