#!/usr/bin/env python3
"""CI smoke test for checkpointed, resumable sweeps.

Scenario (all through the real CLI, in subprocesses):

1. Start ``repro run fig02 --checkpoint-dir`` with a fault injector
   stalling one point, so the sweep cannot finish on its own.
2. Once a few points are journaled, deliver SIGTERM and assert the
   graceful-shutdown path: exit code 130, status ``interrupted``, a
   valid journal holding only the finished points.
3. ``repro resume <run-id>`` and assert it exits 0, re-executes *only*
   the unfinished points (checked via telemetry), and completes the
   journal.
4. Run the same sweep uninterrupted in a clean environment and assert
   the two journals hold bit-identical counters for every point.

Exit codes distinguish failure classes so CI can triage without log
archaeology:

* 0 — success;
* 2 — the initial (interrupted) run misbehaved: no progress, wrong exit
  code, or a malformed partial journal;
* 3 — resume misbehaved: non-zero exit, incomplete journal, or pending
  points re-executed/skipped;
* 4 — resume completed but its counters are **not bit-identical** to an
  uninterrupted reference run (the reproducibility failure);
* 1 — infrastructure problems in the smoke itself (reference run
  failed, unexpected journal layout).
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
SCALE = 13
JOBS = 2
# Stall a mid-suite fig02 point so the first run can never finish alone.
STALL_TOKEN = f"neighbor-populate:WEB:{SCALE}|characterization"
POLL_SECONDS = 0.1
STARTUP_DEADLINE = 180.0


# Failure-class exit codes (see module docstring).
EXIT_INITIAL_RUN = 2
EXIT_RESUME = 3
EXIT_NOT_IDENTICAL = 4


def fail(message, code=1):
    print(f"interruption-smoke FAILED: {message}", file=sys.stderr)
    sys.exit(code)


def base_env(cache_dir):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["REPRO_RESULT_CACHE"] = str(cache_dir)
    env.pop("REPRO_FAULT_INJECT", None)
    env.pop("REPRO_CHECKPOINT_DIR", None)
    return env


def run_cli(argv, env, **kwargs):
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        cwd=REPO,
        env=env,
        capture_output=True,
        text=True,
        **kwargs,
    )


def read_journal(runs_root):
    """{(point, mode): counters-dict} from the single run under root."""
    journals = sorted(Path(runs_root).glob("*/journal.jsonl"))
    if len(journals) != 1:
        fail(f"expected one journal under {runs_root}, found {journals}")
    entries = {}
    for line in journals[0].read_text().splitlines():
        entry = json.loads(line)
        entries[(entry["point"], entry["mode"])] = entry["counters"]
    return entries


def read_status(runs_root):
    (status_path,) = Path(runs_root).glob("*/status.json")
    return json.loads(status_path.read_text())["status"]


def telemetry_events(path, name):
    events = []
    for line in Path(path).read_text().splitlines():
        event = json.loads(line)
        if event.get("event") == name:
            events.append(event)
    return events


def main():
    work = Path(tempfile.mkdtemp(prefix="interruption-smoke-"))
    runs_root = work / "runs"
    fresh_root = work / "runs-fresh"
    faults_state = work / "fault-state"
    telemetry_resume = work / "resume.jsonl"

    # --- 1. interrupted run: stall one point, SIGTERM mid-flight -------
    env = base_env(work / "cache-a")
    env["REPRO_FAULT_INJECT"] = (
        f"stall={STALL_TOKEN};stall_seconds=600;state={faults_state}"
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "run", "fig02",
            "--scale", str(SCALE), "--jobs", str(JOBS),
            "--checkpoint-dir", str(runs_root),
        ],
        cwd=REPO,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    deadline = time.monotonic() + STARTUP_DEADLINE
    journal = []
    while time.monotonic() < deadline:
        journals = list(runs_root.glob("*/journal.jsonl"))
        if journals:
            journal = journals[0].read_text().splitlines()
            if len(journal) >= 3:
                break
        if proc.poll() is not None:
            fail(
                "sweep exited before the interrupt "
                f"(code {proc.returncode}):\n{proc.communicate()[1]}",
                code=EXIT_INITIAL_RUN,
            )
        time.sleep(POLL_SECONDS)
    else:
        proc.kill()
        fail(
            "no journal progress before the startup deadline",
            code=EXIT_INITIAL_RUN,
        )

    proc.send_signal(signal.SIGTERM)
    stdout, stderr = proc.communicate(timeout=120)
    if proc.returncode != 130:
        fail(
            f"interrupted sweep exited {proc.returncode}, wanted 130\n"
            f"stdout:\n{stdout}\nstderr:\n{stderr}",
            code=EXIT_INITIAL_RUN,
        )
    if read_status(runs_root) != "interrupted":
        fail(
            f"status after SIGTERM is {read_status(runs_root)!r}",
            code=EXIT_INITIAL_RUN,
        )
    partial = read_journal(runs_root)
    if not partial or len(partial) >= 23:
        fail(
            f"unexpected partial journal size {len(partial)}",
            code=EXIT_INITIAL_RUN,
        )
    print(f"interrupt OK: exit 130, {len(partial)}/23 points journaled")

    # --- 2. resume finishes only the pending points --------------------
    (run_dir,) = runs_root.glob("*/journal.jsonl")
    run_id = run_dir.parent.name
    # The stall marker is already armed in faults_state, so the injector
    # (still in the environment) must not re-fire on resume.
    result = run_cli(
        [
            "resume", run_id, "--checkpoint-dir", str(runs_root),
            "--no-cache", "--telemetry", str(telemetry_resume),
        ],
        env,
        timeout=600,
    )
    if result.returncode != 0:
        fail(
            f"resume exited {result.returncode}\n"
            f"stdout:\n{result.stdout}\nstderr:\n{result.stderr}",
            code=EXIT_RESUME,
        )
    if read_status(runs_root) != "completed":
        fail(
            f"status after resume is {read_status(runs_root)!r}",
            code=EXIT_RESUME,
        )
    resumed = read_journal(runs_root)
    if len(resumed) != 23:
        fail(
            f"resumed journal holds {len(resumed)}/23 points",
            code=EXIT_RESUME,
        )
    restored = telemetry_events(telemetry_resume, "sweep_started")
    if not restored or restored[0].get("restored") != len(partial):
        fail(
            f"resume restored {restored}; wanted restored={len(partial)}",
            code=EXIT_RESUME,
        )
    rerun = {
        event["point"]
        for event in telemetry_events(telemetry_resume, "point_completed")
    }
    already_done = {point for point, _ in partial}
    if rerun & already_done:
        fail(
            f"resume re-executed journaled points: {rerun & already_done}",
            code=EXIT_RESUME,
        )
    if len(rerun) != 23 - len(partial):
        fail(
            f"resume executed {len(rerun)} points, "
            f"wanted {23 - len(partial)}",
            code=EXIT_RESUME,
        )
    print(f"resume OK: exit 0, re-ran only {len(rerun)} pending points")

    # --- 3. uninterrupted reference run, then bit-identity --------------
    result = run_cli(
        [
            "run", "fig02", "--scale", str(SCALE), "--jobs", str(JOBS),
            "--checkpoint-dir", str(fresh_root),
        ],
        base_env(work / "cache-b"),
        timeout=600,
    )
    if result.returncode != 0:
        fail(
            f"reference sweep exited {result.returncode}\n"
            f"stderr:\n{result.stderr}"
        )
    reference = read_journal(fresh_root)
    if set(reference) != set(resumed):
        fail(
            "reference and resumed runs cover different points",
            code=EXIT_NOT_IDENTICAL,
        )
    for key in sorted(reference):
        if reference[key] != resumed[key]:
            fail(f"counters diverge for {key}", code=EXIT_NOT_IDENTICAL)
    print(f"bit-identity OK: all {len(reference)} counters match")
    print("interruption-smoke PASSED")


if __name__ == "__main__":
    main()
